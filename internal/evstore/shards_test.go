package evstore_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/evstore"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestScanShardsConcatEqualsScan checks the sharding invariant:
// concatenating the shard sources in order reproduces the sequential
// scan event for event, and the per-shard stats sum to the sequential
// stats.
func TestScanShardsConcatEqualsScan(t *testing.T) {
	cfg := smallDayConfig()
	_, sources := workload.DaySources(cfg)
	dir := ingest(t, stream.Concat(sources...))

	for _, q := range []evstore.Query{
		{},
		{Window: evstore.TimeRange{From: testDay.Add(3 * time.Hour), To: testDay.Add(9 * time.Hour)}},
		{Collectors: []string{"rrc00"}},
	} {
		var seqErr error
		var seqStats evstore.ScanStats
		want := stream.Collect(evstore.ScanWithStats(dir, q, &seqErr, &seqStats))
		if seqErr != nil {
			t.Fatal(seqErr)
		}

		shards, err := evstore.ScanShards(dir, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != cfg.Collectors {
			t.Fatalf("query %+v: %d shards, want %d", q, len(shards), cfg.Collectors)
		}
		var got []classify.Event
		var total evstore.ScanStats
		for _, sh := range shards {
			if len(sh.Partitions()) == 0 {
				t.Fatalf("shard %q has no partitions", sh.Collector)
			}
			var shErr error
			var st evstore.ScanStats
			got = append(got, stream.Collect(sh.Events(&shErr, &st))...)
			if shErr != nil {
				t.Fatal(shErr)
			}
			total.Add(st)
		}
		if len(got) != len(want) {
			t.Fatalf("query %+v: shards yielded %d events, scan %d", q, len(got), len(want))
		}
		for i := range got {
			if !eventsEqual(got[i], want[i]) {
				t.Fatalf("query %+v: event %d differs: %+v vs %+v", q, i, got[i], want[i])
			}
		}
		if total != seqStats {
			t.Errorf("query %+v: shard stats %+v != sequential %+v", q, total, seqStats)
		}
	}
}

// TestScanParallelMatchesSequential runs the full analyzer suite
// shard-parallel at several worker counts and requires bit-identical
// results to the sequential scan pass, plus stats totals equal to the
// sequential scan's.
func TestScanParallelMatchesSequential(t *testing.T) {
	cfg := smallDayConfig()
	cfg.Collectors = 3
	_, sources := workload.DaySources(cfg)
	dir := ingest(t, stream.Concat(sources...))
	win := evstore.TimeRange{From: cfg.Day, To: cfg.Day.Add(24 * time.Hour)}
	inWindow := func(e classify.Event) bool { return win.Contains(e.Time) }

	protos := func() []classify.Analyzer {
		return []classify.Analyzer{analysis.NewTable1(), analysis.NewCounts(), analysis.NewPeerBehavior(), analysis.NewIngress()}
	}
	var seqErr error
	var seqStats evstore.ScanStats
	seq := protos()
	analysis.RunAll(evstore.ScanWithStats(dir, evstore.Query{}, &seqErr, &seqStats), inWindow, seq...)
	if seqErr != nil {
		t.Fatal(seqErr)
	}
	want := make([]any, len(seq))
	for i, a := range seq {
		want[i] = a.Finish()
	}

	for _, workers := range []int{1, 2, 4, 0} {
		par := protos()
		ps, err := evstore.ScanParallel(context.Background(), dir, evstore.Query{}, win, workers, par...)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range par {
			if got := a.Finish(); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("workers=%d analyzer %T diverged:\n got %+v\nwant %+v", workers, a, got, want[i])
			}
		}
		if ps.Total != seqStats {
			t.Errorf("workers=%d total stats %+v != sequential %+v", workers, ps.Total, seqStats)
		}
		if len(ps.Shards) != cfg.Collectors {
			t.Errorf("workers=%d: %d shard stats, want %d", workers, len(ps.Shards), cfg.Collectors)
		}
		if ps.Merges != len(ps.Shards)*len(par) {
			t.Errorf("workers=%d: %d merges, want %d", workers, ps.Merges, len(ps.Shards)*len(par))
		}
	}
}

// TestScanParallelMultiDay pins the shard boundary choice: a
// collector's classifier state must carry across its days, so shards
// are per collector, not per partition. A fresh-per-partition split
// would re-First every stream at each day boundary and inflate pc/pn.
func TestScanParallelMultiDay(t *testing.T) {
	cfg := smallDayConfig()
	dir := ingest(t, workload.MultiDaySource(cfg, 2))

	shards, err := evstore.ScanShards(dir, evstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if len(sh.Partitions()) < 2 {
			t.Fatalf("shard %q has %d partitions, want the collector's full 2-day timeline", sh.Collector, len(sh.Partitions()))
		}
	}

	var seqErr error
	want := stream.Classify(evstore.Scan(dir, evstore.Query{}, &seqErr), nil)
	if seqErr != nil {
		t.Fatal(seqErr)
	}
	counts := analysis.NewCounts()
	if _, err := evstore.ScanParallel(context.Background(), dir, evstore.Query{}, evstore.TimeRange{}, 4, counts); err != nil {
		t.Fatal(err)
	}
	if counts.Counts != want {
		t.Errorf("parallel multi-day counts %+v != sequential %+v", counts.Counts, want)
	}
}

// corruptOnePartition truncates the first partition, breaking its
// footer.
func corruptOnePartition(t *testing.T, dir string) {
	t.Helper()
	infos, err := evstore.Stat(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := truncateFile(infos[0].Path, infos[0].SizeBytes/2); err != nil {
		t.Fatal(err)
	}
}

// TestScanParallelErrors covers the failure paths: an empty store and
// a corrupt partition must surface an error, not a partial result.
func TestScanParallelErrors(t *testing.T) {
	if _, err := evstore.ScanParallel(context.Background(), t.TempDir(), evstore.Query{}, evstore.TimeRange{}, 2, analysis.NewCounts()); err == nil {
		t.Error("empty store: want error")
	}

	cfg := smallDayConfig()
	_, sources := workload.DaySources(cfg)
	dir := ingest(t, stream.Concat(sources...))
	corruptOnePartition(t, dir)
	if _, err := evstore.ScanParallel(context.Background(), dir, evstore.Query{}, evstore.TimeRange{}, 2, analysis.NewCounts()); err == nil {
		t.Error("corrupt partition: want error")
	}
}
