package router

// Sink receives every BGP message the instant it is delivered over a
// session. Installing a sink (Network.SetSink) is what turns message
// observation on; without one the network delivers messages without
// retaining anything, so long or large simulations run in memory bounded
// by routing state alone. A sink must not mutate the message: the Update
// aliases attribute state shared with the sender's Adj-RIB-Out.
type Sink interface {
	Record(TracedMessage)
}

// TraceBuffer is the full-trace Sink: it retains every recorded message
// in delivery order, providing the classic packet-capture view the lab
// experiments inspect. Memory grows with every message — install it only
// for runs whose full trace is actually wanted; scenario-scale runs
// should use a bounded sink (e.g. simnet.Capture) instead.
type TraceBuffer struct {
	msgs []TracedMessage
}

// NewTraceBuffer returns an empty buffer.
func NewTraceBuffer() *TraceBuffer { return &TraceBuffer{} }

// Record appends the message.
func (b *TraceBuffer) Record(m TracedMessage) { b.msgs = append(b.msgs, m) }

// Messages returns everything captured so far, in delivery order.
func (b *TraceBuffer) Messages() []TracedMessage { return b.msgs }

// Clear discards captured messages; experiments call this after
// convergence so only event-induced messages are counted.
func (b *TraceBuffer) Clear() { b.msgs = nil }

// Between filters the capture to messages sent from one router to
// another.
func (b *TraceBuffer) Between(from, to string) []TracedMessage {
	var out []TracedMessage
	for _, m := range b.msgs {
		if m.From == from && m.To == to {
			out = append(out, m)
		}
	}
	return out
}

// multiSink fans each message out to several sinks in order.
type multiSink []Sink

func (s multiSink) Record(m TracedMessage) {
	for _, sink := range s {
		sink.Record(m)
	}
}

// MultiSink combines sinks: every message is recorded by each in turn.
// Nil entries are dropped; a single survivor is returned unwrapped.
func MultiSink(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// filterSink forwards only messages matching a predicate.
type filterSink struct {
	keep func(TracedMessage) bool
	next Sink
}

func (f filterSink) Record(m TracedMessage) {
	if f.keep(m) {
		f.next.Record(m)
	}
}

// FilterSink forwards only the messages for which keep returns true —
// the observation points of an experiment, rather than every link. A
// TraceBuffer behind a FilterSink keeps memory proportional to the
// observed links only.
func FilterSink(keep func(TracedMessage) bool, next Sink) Sink {
	return filterSink{keep: keep, next: next}
}
