package mrt

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

func TestFormatAnnouncement(t *testing.T) {
	rec := &BGP4MPMessage{
		PeerAS: 20205, LocalAS: 12654,
		PeerAddr:  netip.MustParseAddr("203.0.113.5"),
		LocalAddr: netip.MustParseAddr("203.0.113.1"),
		Data:      sampleUpdateWire(t), FourByteAS: true,
	}
	h := Header{Timestamp: time.Date(2020, 3, 15, 2, 0, 1, 0, time.UTC), Microsecond: 123456}
	out := Format(h, rec)
	for _, want := range []string{
		"2020-03-15 02:00:01.123456", "|A|", "84.205.64.0/24",
		"AS20205", "20205 3356 174 12654", "3356:901", "IGP",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in %q", want, out)
		}
	}
}

func TestFormatWithdrawal(t *testing.T) {
	wire, err := bgp.Marshal(&bgp.Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("84.205.64.0/24")},
	}, bgp.MarshalOptions{FourByteAS: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := &BGP4MPMessage{
		PeerAS: 20205, LocalAS: 12654,
		PeerAddr:  netip.MustParseAddr("203.0.113.5"),
		LocalAddr: netip.MustParseAddr("203.0.113.1"),
		Data:      wire, FourByteAS: true,
	}
	out := Format(Header{Timestamp: time.Unix(0, 0)}, rec)
	if !strings.Contains(out, "|W|84.205.64.0/24") {
		t.Errorf("withdrawal format: %q", out)
	}
}

func TestFormatStateChangeAndTables(t *testing.T) {
	sc := &BGP4MPStateChange{
		PeerAS:    1,
		PeerAddr:  netip.MustParseAddr("10.0.0.1"),
		LocalAddr: netip.MustParseAddr("10.0.0.2"),
		OldState:  StateEstablished, NewState: StateIdle,
	}
	if out := Format(Header{}, sc); !strings.Contains(out, "STATE") || !strings.Contains(out, "6->1") {
		t.Errorf("state change format: %q", out)
	}
	tbl := &PeerIndexTable{ViewName: "bview", CollectorBGPID: netip.MustParseAddr("1.2.3.4")}
	if out := Format(Header{}, tbl); !strings.Contains(out, "PEER_INDEX") {
		t.Errorf("index format: %q", out)
	}
	rib := &RIBUnicast{Prefix: netip.MustParsePrefix("10.0.0.0/8")}
	if out := Format(Header{}, rib); !strings.Contains(out, "RIB|10.0.0.0/8") {
		t.Errorf("rib format: %q", out)
	}
}

func TestFormatUndecodable(t *testing.T) {
	rec := &BGP4MPMessage{
		PeerAS:    1,
		PeerAddr:  netip.MustParseAddr("10.0.0.1"),
		LocalAddr: netip.MustParseAddr("10.0.0.2"),
		Data:      []byte{1, 2, 3},
	}
	if out := Format(Header{}, rec); !strings.Contains(out, "undecodable") {
		t.Errorf("undecodable format: %q", out)
	}
}
