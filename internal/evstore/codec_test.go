package evstore_test

import (
	"context"
	"testing"

	"repro/internal/evstore"
	"repro/internal/stream"
	"repro/internal/workload"
)

// ingestCodec writes src into a fresh store with the given block codec
// (legacy == true writes the pre-codec v1 format instead).
func ingestCodec(t *testing.T, src stream.EventSource, codec evstore.Codec, legacy bool) string {
	t.Helper()
	dir := t.TempDir()
	w, err := evstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockEvents = 512
	w.Codec = codec
	if legacy {
		evstore.SetLegacyV1(w)
	}
	if err := w.Ingest(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCrossCodecScanEquivalence pins that the same workload written
// under every codec — and under the legacy v1 format — classifies
// bit-identically, with pushdown stats (the deterministic ones) equal
// across codecs.
func TestCrossCodecScanEquivalence(t *testing.T) {
	cfg := smallDayConfig()
	const days = 2
	want := stream.Classify(workload.MultiDaySource(cfg, days), nil)

	type variant struct {
		name   string
		codec  evstore.Codec
		legacy bool
	}
	variants := []variant{
		{"raw", evstore.CodecRaw, false},
		{"deflate", evstore.CodecDeflate, false},
		{"lz", evstore.CodecLZ, false},
		{"legacy-v1", 0, true},
	}
	var base *evstore.ScanStats
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			dir := ingestCodec(t, workload.MultiDaySource(cfg, days), v.codec, v.legacy)
			var scanErr error
			var st evstore.ScanStats
			got := stream.Classify(evstore.ScanWithStats(dir, evstore.Query{}, &scanErr, &st), nil)
			if scanErr != nil {
				t.Fatal(scanErr)
			}
			if got != want {
				t.Errorf("counts diverge:\n got %+v\nwant %+v", got, want)
			}
			if st.BytesDecompressed == 0 || st.Events == 0 {
				t.Fatalf("empty scan stats: %+v", st)
			}
			// Pushdown decisions depend on summaries, not codecs: the
			// decoded-block and event counts must match across codecs.
			if base == nil {
				cp := st
				base = &cp
				return
			}
			if st.Blocks != base.Blocks || st.BlocksDecoded != base.BlocksDecoded ||
				st.Events != base.Events || st.BytesDecompressed != base.BytesDecompressed {
				t.Errorf("pushdown diverges from first codec:\n got %+v\nbase %+v", st, *base)
			}
		})
	}
}

// TestCodecStatsAttribution pins the per-codec split: a raw store's
// decoded blocks all land in PerCodec[CodecRaw] (with read bytes equal
// to decompressed bytes), an lz store's in lz or the raw fallback.
func TestCodecStatsAttribution(t *testing.T) {
	cfg := smallDayConfig()
	src := func() stream.EventSource { return workload.MultiDaySource(cfg, 1) }

	rawDir := ingestCodec(t, src(), evstore.CodecRaw, false)
	var scanErr error
	var st evstore.ScanStats
	stream.Classify(evstore.ScanWithStats(rawDir, evstore.Query{}, &scanErr, &st), nil)
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	rc := st.PerCodec[evstore.CodecRaw]
	if rc.Blocks != st.BlocksDecoded || rc.BytesRead != rc.BytesDecompressed ||
		st.BytesRead != st.BytesDecompressed {
		t.Fatalf("raw store attribution wrong: %+v (total %+v)", rc, st)
	}

	lzDir := ingestCodec(t, src(), evstore.CodecLZ, false)
	stream.Classify(evstore.ScanWithStats(lzDir, evstore.Query{}, &scanErr, &st), nil)
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	lz := st.PerCodec[evstore.CodecLZ]
	raw := st.PerCodec[evstore.CodecRaw]
	if lz.Blocks+raw.Blocks != st.BlocksDecoded || lz.Blocks == 0 {
		t.Fatalf("lz store attribution wrong: lz %+v raw %+v total %+v", lz, raw, st)
	}
	if st.BytesRead >= st.BytesDecompressed {
		t.Fatalf("lz store did not compress: read %d >= decompressed %d", st.BytesRead, st.BytesDecompressed)
	}
}

// TestDecodeAheadPipeline pins that multi-block partitions stream
// through the prefetcher (BlocksPrefetched counts them) and that the
// parallel scan's summed stats — including the new counters — equal
// the sequential scan's exactly.
func TestDecodeAheadPipeline(t *testing.T) {
	cfg := smallDayConfig()
	dir := t.TempDir()
	w, err := evstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockEvents = 64 // many blocks per partition: the pipelined path
	if err := w.Ingest(workload.MultiDaySource(cfg, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var scanErr error
	var seq evstore.ScanStats
	counts := stream.Classify(evstore.ScanWithStats(dir, evstore.Query{}, &scanErr, &seq), nil)
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	if seq.BlocksPrefetched == 0 {
		t.Fatalf("no blocks prefetched over %d decoded", seq.BlocksDecoded)
	}
	if seq.BlocksPrefetched > seq.BlocksDecoded {
		t.Fatalf("prefetched %d > decoded %d", seq.BlocksPrefetched, seq.BlocksDecoded)
	}

	direct := stream.Classify(workload.MultiDaySource(cfg, 2), nil)
	if counts != direct {
		t.Errorf("pipelined counts diverge:\n got %+v\nwant %+v", counts, direct)
	}

	ps, err := evstore.ScanParallel(context.Background(), dir, evstore.Query{}, evstore.TimeRange{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Total != seq {
		t.Errorf("parallel stats diverge from sequential:\n got %+v\nwant %+v", ps.Total, seq)
	}
}

// TestRecodeRoundTrip is the migration pin: a legacy v1 store with
// built sidecars recodes to lz with bit-identical classification, a
// smaller-or-similar footprint, sidecars reused without a single
// rebuild (Built == 0), and a second recode is a no-op.
func TestRecodeRoundTrip(t *testing.T) {
	cfg := smallDayConfig()
	const days = 2
	dir := ingestCodec(t, workload.MultiDaySource(cfg, days), 0, true)

	before := stream.Classify(evstore.Scan(dir, evstore.Query{}, nil), nil)
	bs, err := evstore.BuildSnapshots(context.Background(), dir, snapNamed())
	if err != nil {
		t.Fatal(err)
	}
	if bs.Built == 0 {
		t.Fatal("no sidecars built")
	}

	rs, err := evstore.Recode(context.Background(), dir, evstore.CodecLZ)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Recoded != rs.Partitions || rs.Skipped != 0 {
		t.Fatalf("expected every v1 partition recoded: %+v", rs)
	}
	if rs.Sidecars != rs.Partitions {
		t.Fatalf("recoded %d sidecars for %d partitions", rs.Sidecars, rs.Partitions)
	}
	if rs.BytesOut <= 0 || rs.BytesIn <= 0 {
		t.Fatalf("implausible byte accounting: %+v", rs)
	}

	after := stream.Classify(evstore.Scan(dir, evstore.Query{}, nil), nil)
	if after != before {
		t.Errorf("recode changed classification:\n got %+v\nwant %+v", after, before)
	}

	// The sidecar reuse pin: recode refreshed size+chain, so a rebuild
	// pass reuses every sidecar.
	bs2, err := evstore.BuildSnapshots(context.Background(), dir, snapNamed())
	if err != nil {
		t.Fatal(err)
	}
	if bs2.Built != 0 || bs2.Reused != bs.Partitions {
		t.Fatalf("after recode: Built=%d Reused=%d, want 0/%d", bs2.Built, bs2.Reused, bs.Partitions)
	}

	// Stat reflects the new codec.
	infos, err := evstore.Stat(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Codec != "lz" && info.Codec != "mixed" {
			t.Fatalf("%s: codec %q after recode to lz", info.Path, info.Codec)
		}
	}

	// Recoding again is a no-op: everything already lz (or raw
	// fallback).
	rs2, err := evstore.Recode(context.Background(), dir, evstore.CodecLZ)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Recoded != 0 || rs2.Skipped != rs.Partitions {
		t.Fatalf("second recode not a no-op: %+v", rs2)
	}
}

// TestRecodeThereAndBack recodes lz → deflate → lz and pins
// classification plus event-level fidelity throughout.
func TestRecodeThereAndBack(t *testing.T) {
	cfg := smallDayConfig()
	dir := ingestCodec(t, workload.MultiDaySource(cfg, 1), evstore.CodecLZ, false)
	want := stream.Collect(evstore.Scan(dir, evstore.Query{}, nil))

	for _, codec := range []evstore.Codec{evstore.CodecDeflate, evstore.CodecRaw, evstore.CodecLZ} {
		if _, err := evstore.Recode(context.Background(), dir, codec); err != nil {
			t.Fatalf("recode to %v: %v", codec, err)
		}
		var scanErr error
		got := stream.Collect(evstore.Scan(dir, evstore.Query{}, &scanErr))
		if scanErr != nil {
			t.Fatalf("after recode to %v: %v", codec, scanErr)
		}
		if len(got) != len(want) {
			t.Fatalf("after recode to %v: %d of %d events", codec, len(got), len(want))
		}
		for i := range want {
			if !eventsEqual(got[i], want[i]) {
				t.Fatalf("after recode to %v: event %d diverged", codec, i)
			}
		}
	}
}

// TestWriterCodecValidation pins that an invalid codec fails the
// ingest instead of writing unreadable blocks.
func TestWriterCodecValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := evstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.Codec = evstore.Codec(42)
	w.BlockEvents = 16 // flush during Ingest, not only at Close
	err = w.Ingest(workload.MultiDaySource(smallDayConfig(), 1))
	if err == nil {
		err = w.Close()
	}
	if err == nil {
		t.Fatal("ingest with invalid codec succeeded")
	}
	w.Abort()
}
