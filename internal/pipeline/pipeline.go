// Package pipeline implements the paper's §4 data preparation over raw MRT
// streams: bogon filtering against a time-aware allocation registry, route
// server ASN insertion into the AS path, and same-second timestamp
// disambiguation, producing normalized classify.Events.
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/mrt"
	"repro/internal/registry"
)

// sameSecondStep is the artificial spacing applied to messages recorded at
// identical timestamps, preserving arrival order (§4: "assume that each
// subsequent message arrives 0.01 ms after the last").
const sameSecondStep = 10 * time.Microsecond

// Stats counts pipeline outcomes for reporting.
type Stats struct {
	Messages           int // BGP messages examined
	NonUpdate          int // OPEN/KEEPALIVE/NOTIFICATION records skipped
	Announcements      int // announce events emitted
	Withdrawals        int // withdraw events emitted
	DroppedBogonASN    int // announcements dropped: unallocated ASN in path
	DroppedBogonPrefix int // announcements dropped: unallocated prefix
	RouteServerFixups  int // AS paths with the route server ASN inserted
	Adjusted           int // timestamps nudged for same-second ordering
}

// Normalizer converts collector MRT records into classify.Events.
type Normalizer struct {
	// Registry backs the bogon filter; nil disables filtering.
	Registry *registry.Registry
	// RouteServers marks peer ASNs that are IXP route servers which may
	// omit their own ASN from announcements.
	RouteServers map[uint32]bool

	Stats Stats

	lastTime map[string]time.Time // per collector
}

// NewNormalizer returns a normalizer with the given registry (nil disables
// the bogon filter).
func NewNormalizer(reg *registry.Registry) *Normalizer {
	return &Normalizer{
		Registry:     reg,
		RouteServers: make(map[uint32]bool),
		lastTime:     make(map[string]time.Time),
	}
}

// adjustTime applies same-second disambiguation per collector.
func (n *Normalizer) adjustTime(collector string, ts time.Time) time.Time {
	last, ok := n.lastTime[collector]
	if ok && !ts.After(last) {
		ts = last.Add(sameSecondStep)
		n.Stats.Adjusted++
	}
	n.lastTime[collector] = ts
	return ts
}

// Process converts one BGP4MP message record into zero or more events,
// one per announced or withdrawn prefix.
func (n *Normalizer) Process(collector string, h mrt.Header, rec *mrt.BGP4MPMessage) ([]classify.Event, error) {
	n.Stats.Messages++
	msg, err := rec.Decode()
	if err != nil {
		return nil, fmt.Errorf("pipeline: decode BGP message: %w", err)
	}
	upd, ok := msg.(*bgp.Update)
	if !ok {
		n.Stats.NonUpdate++
		return nil, nil
	}
	ts := n.adjustTime(collector, h.Time())

	var events []classify.Event
	base := classify.Event{
		Time:      ts,
		Collector: collector,
		PeerAS:    rec.PeerAS,
		PeerAddr:  rec.PeerAddr,
	}

	for _, p := range upd.AllWithdrawn() {
		e := base
		e.Prefix = p
		e.Withdraw = true
		events = append(events, e)
		n.Stats.Withdrawals++
	}

	announced := upd.Announced()
	if len(announced) == 0 {
		return events, nil
	}

	path := upd.Attrs.ASPath
	// §4: IXP route servers may omit their own ASN; insert it so peers are
	// not overcounted and session grouping stays unambiguous.
	if n.RouteServers[rec.PeerAS] {
		if first, ok := path.FirstAS(); !ok || first != rec.PeerAS {
			path = path.Prepend(rec.PeerAS, 1)
			n.Stats.RouteServerFixups++
		}
	}

	if n.Registry != nil && !n.Registry.PathAllocated(path.Flatten(), ts) {
		n.Stats.DroppedBogonASN += len(announced)
		return events, nil
	}

	comms := upd.Attrs.Communities.Canonical()
	for _, p := range announced {
		if n.Registry != nil && !n.Registry.PrefixAllocated(p, ts) {
			n.Stats.DroppedBogonPrefix++
			continue
		}
		e := base
		e.Prefix = p
		e.ASPath = path
		e.Communities = comms
		e.HasMED = upd.Attrs.HasMED
		e.MED = upd.Attrs.MED
		events = append(events, e)
		n.Stats.Announcements++
	}
	return events, nil
}

// ProcessReader drains an MRT stream from one collector, invoking fn for
// every normalized event in order.
func (n *Normalizer) ProcessReader(collector string, r *mrt.Reader, fn func(classify.Event) error) error {
	return r.Walk(func(h mrt.Header, rec mrt.Record) error {
		msg, ok := rec.(*mrt.BGP4MPMessage)
		if !ok {
			return nil // state changes and RIB dumps are not update traffic
		}
		events, err := n.Process(collector, h, msg)
		if err != nil {
			return err
		}
		for _, e := range events {
			if err := fn(e); err != nil {
				return err
			}
		}
		return nil
	})
}
