package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	GET  /v1/table1        ?from&to&collectors&peeras&prefixrange
//	GET  /v1/table2        ?from&to&collectors&peeras&prefixrange
//	GET  /v1/figure/2      ?fromyear&toyear | ?year
//	GET  /v1/figure/3      ?collector&prefix&from&to
//	GET  /v1/figure/4      ?collector&peer&prefix&path&from&to
//	GET  /v1/figure/5      ?collector&peer&prefix&path&from&to
//	GET  /v1/figure/6      ?from&to
//	GET  /v1/infer/peers   ?from&to&collectors
//	GET  /v1/infer/ingress ?from&to&collectors
//	GET  /v1/stats
//	GET  /healthz
//	GET  /readyz           (readiness: 503 until the store view is serveable)
//	GET  /metrics          (Prometheus text, when Config.Metrics is set)
//	POST /v1/state         (binary QuerySpec → binary StateEnvelope)
//
// Times are RFC 3339; collectors/peeras are comma-separated. Every
// analysis answer is a JSON Answer envelope: the data plus provenance
// (cache/snapshots/scan, plan and pushdown stats, compute time, and —
// under a coordinator — per-shard contributions). Request cancellation
// propagates into the residual scans, which stop at the next block
// boundary. The same /v1 surface is served whichever engine sits
// below: single-node answers and coordinator scatter-gather answers
// are bit-identical over the same store.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	serveKind := func(kind string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			spec, err := specFromRequest(kind, r)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			s.serveAnswer(w, r, spec)
		}
	}
	mux.HandleFunc("GET /v1/table1", serveKind(KindTable1))
	mux.HandleFunc("GET /v1/table2", serveKind(KindTable2))
	mux.HandleFunc("GET /v1/figure/{n}", func(w http.ResponseWriter, r *http.Request) {
		kind, ok := map[string]string{
			"2": KindFigure2, "3": KindFigure3, "4": KindFigure4,
			"5": KindFigure5, "6": KindFigure6,
		}[r.PathValue("n")]
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown figure %q (have 2-6)", r.PathValue("n")))
			return
		}
		spec, err := specFromRequest(kind, r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		s.serveAnswer(w, r, spec)
	})
	mux.HandleFunc("GET /v1/infer/peers", serveKind(KindPeers))
	mux.HandleFunc("GET /v1/infer/ingress", serveKind(KindIngress))
	s.handleOps(mux)
	return mux
}

// StateHandler returns the shard-mode HTTP surface: just the state
// protocol plus health and stats — a shard daemon answers analyzer
// state to its coordinator, not shaped JSON to end users.
func (s *Server) StateHandler() http.Handler {
	mux := http.NewServeMux()
	s.handleOps(mux)
	return mux
}

// handleOps registers the endpoints common to both modes: the binary
// state protocol (so any daemon can serve as a shard), stats, health,
// readiness, and — when the server is instrumented — /metrics.
func (s *Server) handleOps(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/state", s.handleState)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats(r.Context()))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h, err := s.engine.Health(r.Context())
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		// The extra "ok"/"partitions" shape predates BackendHealth and
		// is kept for existing probes; BackendHealth adds generation
		// (the field coordinators poll) and per-shard detail.
		writeJSON(w, http.StatusOK, struct {
			BackendHealth
			OKCompat bool `json:"ok"`
		}{h, h.OK})
	})
	// Readiness is distinct from liveness: /healthz answers "is the
	// process and its engine alive", /readyz answers "should a load
	// balancer route query traffic here" — 503 until the store view is
	// refreshed (and, under a coordinator, ≥1 shard is healthy).
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reason := s.Ready(r.Context())
		if !ready {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	if s.metrics != nil {
		mux.Handle("GET /metrics", s.metrics.reg.Handler())
	}
}

// handleState serves the coordinator↔shard protocol: a binary
// QuerySpec in, a binary StateEnvelope out. 204 reports an empty store
// (nothing to contribute), which the coordinator treats as a complete
// zero answer rather than a failure.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusBadRequest, fmt.Errorf("query spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := DecodeQuerySpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	env, err := s.engine.State(r.Context(), spec)
	if err != nil {
		if errors.Is(err, ErrEmptyStore) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		httpError(w, errStatus(r, err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(AppendStateEnvelope(nil, env))
}

func (s *Server) serveAnswer(w http.ResponseWriter, r *http.Request, spec QuerySpec) {
	start := time.Now()
	ans, err := s.Answer(r.Context(), spec)
	if err != nil {
		if s.logger != nil {
			s.logger.Warn("query failed", "endpoint", spec.Kind,
				"elapsed", time.Since(start), "err", err)
		}
		httpError(w, errStatus(r, err), err)
		return
	}
	tier := tierOf(ans)
	// The tier header lets load generators and caches classify answers
	// without parsing the body.
	w.Header().Set("X-Comm-Tier", tier)
	if s.logger != nil && s.logger.Enabled(r.Context(), slog.LevelDebug) {
		s.logger.Debug("query", "endpoint", spec.Kind, "tier", tier,
			"elapsed", time.Since(start), "partial", ans.Partial,
			"spec", spec.CacheKey())
	}
	writeJSON(w, http.StatusOK, ans)
}

// errStatus maps serving errors onto HTTP statuses.
func errStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		// Client went away; the scan already aborted. 499-style.
		return http.StatusRequestTimeout
	case errors.Is(err, ErrEmptyStore), strings.Contains(err.Error(), "no partitions"):
		return http.StatusServiceUnavailable // store not ingested yet
	case strings.Contains(err.Error(), "needs"):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// specFromRequest parses the query parameters shared by all kinds plus
// the kind-specific ones.
func specFromRequest(kind string, r *http.Request) (QuerySpec, error) {
	q := r.URL.Query()
	spec := QuerySpec{Kind: kind}
	var err error
	if v := q.Get("from"); v != "" {
		if spec.Window.From, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("from: %w", err)
		}
	}
	if v := q.Get("to"); v != "" {
		if spec.Window.To, err = time.Parse(time.RFC3339, v); err != nil {
			return spec, fmt.Errorf("to: %w", err)
		}
	}
	if v := q.Get("collectors"); v != "" {
		spec.Collectors = strings.Split(v, ",")
	}
	if v := q.Get("peeras"); v != "" {
		for _, tok := range strings.Split(v, ",") {
			as, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
			if err != nil {
				return spec, fmt.Errorf("peeras %q: %w", tok, err)
			}
			spec.PeerAS = append(spec.PeerAS, uint32(as))
		}
	}
	if v := q.Get("prefixrange"); v != "" {
		if spec.PrefixRange, err = netip.ParsePrefix(v); err != nil {
			return spec, fmt.Errorf("prefixrange: %w", err)
		}
	}
	switch kind {
	case KindFigure2:
		if v := q.Get("year"); v != "" {
			y, err := strconv.Atoi(v)
			if err != nil {
				return spec, fmt.Errorf("year: %w", err)
			}
			spec.FromYear, spec.ToYear = y, y
		}
		if v := q.Get("fromyear"); v != "" {
			if spec.FromYear, err = strconv.Atoi(v); err != nil {
				return spec, fmt.Errorf("fromyear: %w", err)
			}
		}
		if v := q.Get("toyear"); v != "" {
			if spec.ToYear, err = strconv.Atoi(v); err != nil {
				return spec, fmt.Errorf("toyear: %w", err)
			}
		}
	case KindFigure3, KindFigure4, KindFigure5:
		spec.Collector = q.Get("collector")
		if v := q.Get("prefix"); v != "" {
			if spec.Prefix, err = netip.ParsePrefix(v); err != nil {
				return spec, fmt.Errorf("prefix: %w", err)
			}
		}
		if kind != KindFigure3 {
			if v := q.Get("peer"); v != "" {
				if spec.PeerAddr, err = netip.ParseAddr(v); err != nil {
					return spec, fmt.Errorf("peer: %w", err)
				}
			}
			spec.Path = q.Get("path")
		}
	}
	return spec, nil
}
