package collector

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/labexp"
	"repro/internal/mrt"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/router"
	"repro/internal/topo"
	"repro/internal/workload"
)

var day = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func TestEventRecordRoundTrip(t *testing.T) {
	e := classify.Event{
		Time:        day.Add(2 * time.Hour),
		Collector:   "rrc00",
		PeerAS:      20205,
		PeerAddr:    netip.MustParseAddr("203.0.113.5"),
		Prefix:      netip.MustParsePrefix("84.205.64.0/24"),
		ASPath:      bgp.NewASPath(20205, 3356, 12654),
		Communities: bgp.Communities{bgp.NewCommunity(3356, 901)},
	}
	rec, err := EventRecord(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := rec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	upd := msg.(*bgp.Update)
	if upd.NLRI[0] != e.Prefix {
		t.Errorf("prefix: %v", upd.NLRI)
	}
	if !upd.Attrs.ASPath.Equal(e.ASPath) {
		t.Errorf("path: %v", upd.Attrs.ASPath)
	}
	if !upd.Attrs.Communities.Equal(e.Communities) {
		t.Errorf("communities: %v", upd.Attrs.Communities)
	}
}

func TestEventRecordRouteServerStripsASN(t *testing.T) {
	e := classify.Event{
		Time:     day,
		PeerAS:   6695,
		PeerAddr: netip.MustParseAddr("203.0.113.9"),
		Prefix:   netip.MustParsePrefix("84.205.64.0/24"),
		ASPath:   bgp.NewASPath(6695, 3356, 12654),
	}
	rec, err := EventRecord(e, map[uint32]bool{6695: true})
	if err != nil {
		t.Fatal(err)
	}
	upd, _ := rec.Decode()
	got := upd.(*bgp.Update).Attrs.ASPath.String()
	if got != "3356 12654" {
		t.Errorf("path = %q, want route server ASN stripped", got)
	}
}

func TestEventRecordIPv6(t *testing.T) {
	e := classify.Event{
		Time:     day,
		PeerAS:   20205,
		PeerAddr: netip.MustParseAddr("2001:db8::5"),
		Prefix:   netip.MustParsePrefix("2001:7fb:ff00::/48"),
		ASPath:   bgp.NewASPath(20205, 12654),
	}
	rec, err := EventRecord(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	upd, _ := rec.Decode()
	ann := upd.(*bgp.Update).Announced()
	if len(ann) != 1 || ann[0] != e.Prefix {
		t.Errorf("announced: %v", ann)
	}
	// v6 withdrawal.
	e.Withdraw = true
	rec, err = EventRecord(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	upd, _ = rec.Decode()
	wd := upd.(*bgp.Update).AllWithdrawn()
	if len(wd) != 1 || wd[0] != e.Prefix {
		t.Errorf("withdrawn: %v", wd)
	}
}

// TestDatasetMRTRoundTrip is the end-to-end §4 test: generate a dataset,
// write MRT archives, read them back through the pipeline, and verify the
// classifier sees the same announcement mix.
func TestDatasetMRTRoundTrip(t *testing.T) {
	cfg := workload.DefaultDayConfig(day)
	cfg.Collectors = 2
	cfg.PeersPerCollector = 6
	cfg.PrefixesV4 = 80
	cfg.PrefixesV6 = 8
	ds := workload.GenerateDay(cfg)

	dir := t.TempDir()
	files, err := WriteDatasetDir(ds, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files: %v", files)
	}

	// Direct classification.
	clDirect := classify.New()
	var direct classify.Counts
	for _, e := range ds.Events {
		direct.Observe(clDirect, e)
	}

	// Via MRT + pipeline.
	norm := pipeline.NewNormalizer(registry.Synthetic(time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)))
	norm.RouteServers = ds.RouteServerASNs()
	clPipe := classify.New()
	var piped classify.Counts
	for name, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		err = norm.ProcessReader(name, mrt.NewReader(f), func(e classify.Event) error {
			piped.Observe(clPipe, e)
			return nil
		})
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}

	if piped.Announcements() != direct.Announcements() {
		t.Errorf("announcements: piped %d, direct %d", piped.Announcements(), direct.Announcements())
	}
	if piped.Withdrawals != direct.Withdrawals {
		t.Errorf("withdrawals: piped %d, direct %d", piped.Withdrawals, direct.Withdrawals)
	}
	for _, ty := range classify.Types() {
		if piped.Of(ty) != direct.Of(ty) {
			t.Errorf("%v: piped %d, direct %d", ty, piped.Of(ty), direct.Of(ty))
		}
	}
	if norm.Stats.DroppedBogonASN != 0 || norm.Stats.DroppedBogonPrefix != 0 {
		t.Errorf("synthetic dataset should contain no bogons: %+v", norm.Stats)
	}
	// Route-server fixups happened iff the dataset has RS peers that
	// announced something.
	if len(ds.RouteServerASNs()) > 0 && norm.Stats.RouteServerFixups == 0 {
		t.Error("no route-server fixups recorded")
	}
}

func TestCountRecords(t *testing.T) {
	cfg := workload.DefaultBeaconConfig(day)
	cfg.Collectors = 1
	cfg.PeersPerCollector = 2
	ds := workload.GenerateBeacon(cfg)
	dir := t.TempDir()
	files, err := WriteDatasetDir(ds, dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, path := range files {
		n, err := CountRecords(path)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != len(ds.Events) {
		t.Errorf("records = %d, events = %d", total, len(ds.Events))
	}
}

func TestTraceRecordsFromLab(t *testing.T) {
	// Run Exp2 and archive the collector's view as MRT, then read it back.
	res, err := labexp.Run(labexp.Exp2, router.CiscoIOS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X1toC1) == 0 {
		t.Fatal("no collector messages")
	}
	path := filepath.Join(t.TempDir(), "c1.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := mrt.NewWriter(f)
	w.ExtendedTime = true
	resolve := func(name string) (uint32, netip.Addr) {
		return topo.ASX, netip.MustParseAddr("10.0.41.1")
	}
	if err := TraceRecords(w, res.X1toC1, "C1", resolve); err != nil {
		t.Fatal(err)
	}
	f.Close()
	n, err := CountRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.X1toC1) {
		t.Errorf("records = %d, want %d", n, len(res.X1toC1))
	}
}

func TestArchiveWindow(t *testing.T) {
	ts := time.Date(2020, 3, 15, 2, 7, 33, 0, time.UTC)
	want := time.Date(2020, 3, 15, 2, 5, 0, 0, time.UTC)
	if got := ArchiveWindow(ts); !got.Equal(want) {
		t.Errorf("ArchiveWindow = %v, want %v", got, want)
	}
}
