// Longitudinal regenerates the paper's ten-year series: the per-type
// announcement counts of Figure 2 and the revealed-community ratio of
// Figure 6, both over synthetic quarterly-style days from 2010 to 2020.
// It then ingests the decade into a columnar event store and answers
// the same per-year questions as windowed store queries — the paper's
// ingest-once / analyze-many workflow, where predicate pushdown skips
// every partition outside the queried year. Both passes exploit the
// years' independence: regeneration runs on the analysis package's
// figure-series worker pool, and the 11 windowed queries run
// concurrently against the read-only store.
//
// Run with: go run ./examples/longitudinal
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/evstore"
	"repro/internal/stream"
	"repro/internal/textplot"
	"repro/internal/workload"
)

func main() {
	fmt.Println("Figure 2 — announcements per type per synthetic day, 2010-2020:")
	regenStart := time.Now()
	rows := analysis.Figure2Series(2010, 2020)
	regenElapsed := time.Since(regenStart)
	var series []textplot.Series
	for _, ty := range classify.Types() {
		s := textplot.Series{Name: ty.String()}
		for _, r := range rows {
			s.Points = append(s.Points, float64(r.Counts.Of(ty)))
		}
		series = append(series, s)
	}
	fmt.Print(textplot.Lines(series, 8))
	fmt.Println("\nper-year type shares (the mix stays stable while volume grows):")
	var tbl [][]string
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Year), fmt.Sprint(r.Counts.Announcements())}
		for _, ty := range classify.Types() {
			row = append(row, fmt.Sprintf("%.1f%%", 100*r.Counts.Share(ty)))
		}
		tbl = append(tbl, row)
	}
	fmt.Print(textplot.Table([]string{"year", "total", "pc", "pn", "nc", "nn", "xc", "xn"}, tbl))

	fmt.Println("\nFigure 6 — revealed community attributes during withdrawal phases:")
	f6 := analysis.Figure6Series(2010, 2020)
	var f6tbl [][]string
	for _, r := range f6 {
		f6tbl = append(f6tbl, []string{
			fmt.Sprint(r.Year),
			fmt.Sprint(r.Summary.Total),
			fmt.Sprint(r.Summary.WithdrawalOnly),
			fmt.Sprintf("%.2f", r.Summary.WithdrawalRatio),
		})
	}
	fmt.Print(textplot.Table([]string{"year", "total attrs", "withdrawal-only", "ratio"}, f6tbl))
	fmt.Println("\nthe ratio stays near 0.6 across the decade, as in the paper.")

	storeVariant(rows, regenElapsed)
}

// storeVariant ingests the decade of synthetic days into an event store
// once, then answers each year's Figure 2 row as a windowed store query.
// Pushdown prunes the other years' partitions by file name alone, so a
// one-year question reads roughly a tenth of the store — and none of the
// generators re-run.
func storeVariant(want []analysis.Figure2Row, regenElapsed time.Duration) {
	fmt.Println("\nStore-backed variant — ingest once, answer windowed queries:")
	dir, err := os.MkdirTemp("", "longitudinal-store-")
	if err != nil {
		fmt.Println("  skipped:", err)
		return
	}
	defer os.RemoveAll(dir)

	ingestStart := time.Now()
	w, err := evstore.Open(dir)
	if err != nil {
		fmt.Println("  skipped:", err)
		return
	}
	for y := 2010; y <= 2020; y++ {
		cfg := workload.HistoricalDayConfig(y)
		_, sources := workload.DaySources(cfg)
		if err := w.Ingest(stream.Concat(sources...)); err != nil {
			fmt.Println("  ingest failed:", err)
			return
		}
	}
	if err := w.Close(); err != nil {
		fmt.Println("  ingest failed:", err)
		return
	}
	st := w.Stats()
	fmt.Printf("  ingested %d events into %d partitions (%d blocks) in %v\n",
		st.Events, st.Partitions, st.Blocks, time.Since(ingestStart).Round(time.Millisecond))

	// The 11 yearly questions are independent windowed queries over a
	// read-only store, so they run concurrently on the analysis
	// package's bounded pool — each writes only its own result slot,
	// keeping the printed table in year order regardless of completion
	// order.
	queryStart := time.Now()
	const years = 11
	type yearResult struct {
		counts classify.Counts
		stats  evstore.ScanStats
		err    error
	}
	results := make([]yearResult, years)
	workers := min(runtime.GOMAXPROCS(0), years)
	stream.ForEachIndexed(years, workers, func(i int) {
		cfg := workload.HistoricalDayConfig(2010 + i)
		// The window covers the day plus its warm-up eve and spillover
		// morning, so the classifier sees exactly the events the direct
		// path generated; cfg.InWindow still picks what is tallied.
		q := evstore.Query{Window: evstore.TimeRange{
			From: cfg.Day.Add(-24 * time.Hour),
			To:   cfg.Day.Add(48 * time.Hour),
		}}
		r := &results[i]
		r.counts = stream.Classify(evstore.ScanWithStats(dir, q, &r.err, &r.stats), cfg.InWindow)
	})

	var tbl [][]string
	var totalStats evstore.ScanStats
	for i, r := range results {
		if r.err != nil {
			fmt.Println("  query failed:", r.err)
			return
		}
		match := "=="
		if r.counts != want[i].Counts {
			match = "DIVERGES"
		}
		totalStats.Add(r.stats)
		tbl = append(tbl, []string{
			fmt.Sprint(2010 + i),
			fmt.Sprint(r.counts.Announcements()),
			fmt.Sprintf("%.1f%%", 100*r.counts.NoPathChangeShare()),
			match,
		})
	}
	fmt.Print(textplot.Table([]string{"year", "total", "nc+nn", "vs regenerated"}, tbl))
	fmt.Printf("  11 windowed queries on %d workers in %v (regeneration pass: %v); pushdown pruned %d/%d partition reads\n",
		workers, time.Since(queryStart).Round(time.Millisecond), regenElapsed.Round(time.Millisecond),
		totalStats.PartitionsPruned, totalStats.Partitions)
}
