package collector

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bgp"
	"repro/internal/mrt"
	"repro/internal/workload"
)

// streamKey identifies one (peer, prefix) stream inside a collector.
type streamKey struct {
	peerAddr netip.Addr
	prefix   netip.Prefix
}

// ribState is the last-known route of one stream at snapshot time.
type ribState struct {
	peerAS uint32
	attrs  bgp.PathAttrs
}

// snapshotStates replays pre-day events into per-collector stream states.
func snapshotStates(ds *workload.Dataset) map[string]map[streamKey]*ribState {
	state := make(map[string]map[streamKey]*ribState)
	for _, e := range ds.Events {
		if !e.Time.Before(ds.Day) {
			break // events are time-sorted
		}
		streams := state[e.Collector]
		if streams == nil {
			streams = make(map[streamKey]*ribState)
			state[e.Collector] = streams
		}
		key := streamKey{peerAddr: e.PeerAddr, prefix: e.Prefix}
		if e.Withdraw {
			delete(streams, key)
			continue
		}
		streams[key] = &ribState{
			peerAS: e.PeerAS,
			attrs: bgp.PathAttrs{
				Origin:      bgp.OriginIGP,
				ASPath:      e.ASPath,
				Communities: e.Communities,
				HasMED:      e.HasMED,
				MED:         e.MED,
			},
		}
	}
	return state
}

// WriteRIBSnapshotDir writes one TABLE_DUMP_V2 snapshot per collector
// capturing each stream's state at the start of the dataset's measured
// day — the bview files RIS publishes alongside its update archives.
// Files are named <collector>.bview.mrt.
func WriteRIBSnapshotDir(ds *workload.Dataset, dir string) (map[string]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	state := snapshotStates(ds)
	files := make(map[string]string, len(state))
	collectors := make([]string, 0, len(state))
	for name := range state {
		collectors = append(collectors, name)
	}
	sort.Strings(collectors)
	for _, name := range collectors {
		path := filepath.Join(dir, name+".bview.mrt")
		if err := writeSnapshot(path, ds, state[name]); err != nil {
			return nil, fmt.Errorf("collector %s: %w", name, err)
		}
		files[name] = path
	}
	return files, nil
}

// writeSnapshot emits a PEER_INDEX_TABLE followed by one RIB record per
// prefix for one collector.
func writeSnapshot(path string, ds *workload.Dataset, streams map[streamKey]*ribState) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := mrt.NewWriter(f)

	// Stable peer index: sorted by address.
	peerAddrs := make([]netip.Addr, 0, 16)
	seen := make(map[netip.Addr]bool)
	for key := range streams {
		if !seen[key.peerAddr] {
			seen[key.peerAddr] = true
			peerAddrs = append(peerAddrs, key.peerAddr)
		}
	}
	sort.Slice(peerAddrs, func(i, j int) bool { return peerAddrs[i].Compare(peerAddrs[j]) < 0 })
	index := make(map[netip.Addr]uint16, len(peerAddrs))
	table := &mrt.PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("198.51.100.1"),
		ViewName:       "bview",
	}
	for i, addr := range peerAddrs {
		index[addr] = uint16(i)
		var as uint32
		for key, st := range streams {
			if key.peerAddr == addr {
				as = st.peerAS
				break
			}
		}
		bgpID := netip.AddrFrom4([4]byte{10, 255, byte(i >> 8), byte(i)})
		table.Peers = append(table.Peers, mrt.Peer{BGPID: bgpID, Addr: addr, AS: as})
	}
	if err := w.Write(ds.Day, table); err != nil {
		return err
	}

	// Group streams by prefix, sorted for determinism.
	byPrefix := make(map[netip.Prefix][]streamKey)
	for key := range streams {
		byPrefix[key.prefix] = append(byPrefix[key.prefix], key)
	}
	prefixes := make([]netip.Prefix, 0, len(byPrefix))
	for p := range byPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if c := prefixes[i].Addr().Compare(prefixes[j].Addr()); c != 0 {
			return c < 0
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	for seq, p := range prefixes {
		keys := byPrefix[p]
		sort.Slice(keys, func(i, j int) bool { return keys[i].peerAddr.Compare(keys[j].peerAddr) < 0 })
		rec := &mrt.RIBUnicast{Sequence: uint32(seq), Prefix: p}
		for _, key := range keys {
			rec.Entries = append(rec.Entries, mrt.RIBEntry{
				PeerIndex:  index[key.peerAddr],
				Originated: ds.Day,
				Attrs:      streams[key].attrs,
			})
		}
		if err := w.Write(ds.Day, rec); err != nil {
			return err
		}
	}
	return w.Flush()
}
