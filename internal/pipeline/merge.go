package pipeline

import (
	"container/heap"

	"repro/internal/classify"
)

// MergeEvents merges multiple time-sorted event streams (one per
// collector archive) into one globally time-ordered stream, as analyses
// spanning collectors require. Ties keep the input-stream order, so the
// merge is stable and deterministic.
func MergeEvents(streams ...[]classify.Event) []classify.Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]classify.Event, 0, total)
	h := make(mergeHeap, 0, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			h = append(h, mergeCursor{stream: i, events: s})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		cur := h[0]
		out = append(out, cur.events[0])
		if len(cur.events) > 1 {
			h[0].events = cur.events[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

type mergeCursor struct {
	stream int
	events []classify.Event
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	ti, tj := h[i].events[0].Time, h[j].events[0].Time
	if !ti.Equal(tj) {
		return ti.Before(tj)
	}
	return h[i].stream < h[j].stream
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
