// Package wire is the shared binary codec beneath the persistent
// formats: varint/zigzag primitives, address, prefix, AS-path, and
// community-set encodings, and a sticky-error Reader. The evstore
// block/footer format and the analyzer snapshot sidecars are both
// written with the Append* helpers and parsed with Reader, so the two
// layers cannot drift apart on the primitives.
//
// Encodings are length-prefixed and self-delimiting but not
// self-describing: the caller must read fields in the order they were
// appended. Reader degrades safely on corrupt input — after the first
// malformed field every accessor returns zero values and Err reports
// the failure — so decode loops need a single error check at the end.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"time"

	"repro/internal/bgp"
)

// Zigzag maps signed to unsigned so small-magnitude deltas stay short.
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends a zigzag-encoded signed varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, Zigzag(v))
}

// AppendString appends a length-prefixed byte string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendTime appends an instant as unix nanoseconds (UTC restoring).
func AppendTime(dst []byte, t time.Time) []byte {
	return AppendVarint(dst, t.UnixNano())
}

// AppendAddr appends an address as a length tag (0 invalid, 4, or 16)
// followed by the address bytes.
func AppendAddr(dst []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(dst, 0)
	}
	if a.Is4() {
		b := a.As4()
		dst = append(dst, 4)
		return append(dst, b[:]...)
	}
	b := a.As16()
	dst = append(dst, 16)
	return append(dst, b[:]...)
}

// AppendPrefix appends a prefix as its address followed by the bit
// length; the invalid prefix is the invalid address alone.
func AppendPrefix(dst []byte, p netip.Prefix) []byte {
	if !p.IsValid() {
		return append(dst, 0)
	}
	dst = AppendAddr(dst, p.Addr())
	return binary.AppendUvarint(dst, uint64(p.Bits()))
}

// AppendPath appends an AS path: segment count, then per segment its
// type, ASN count, and ASNs.
func AppendPath(dst []byte, p bgp.ASPath) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	for _, seg := range p {
		dst = binary.AppendUvarint(dst, uint64(seg.Type))
		dst = binary.AppendUvarint(dst, uint64(len(seg.ASNs)))
		for _, as := range seg.ASNs {
			dst = binary.AppendUvarint(dst, uint64(as))
		}
	}
	return dst
}

// AppendComms appends a community set as a count plus zigzag deltas
// (canonical sets are ascending, so deltas are small and positive).
func AppendComms(dst []byte, cs bgp.Communities) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cs)))
	prev := int64(0)
	for _, c := range cs {
		dst = AppendVarint(dst, int64(c)-prev)
		prev = int64(c)
	}
	return dst
}

// Reader decodes a wire byte stream with sticky error handling.
type Reader struct {
	b   []byte
	pos int
	err error
}

// NewReader returns a reader over b. The reader aliases b; the caller
// must not mutate it while reading.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records a decode error at the current position (first one wins),
// for callers layering their own validation onto the primitives.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format+" at offset %d", append(args, r.pos)...)
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.pos }

// Pos returns the current read offset into the underlying buffer, so
// callers can slice out the encoded bytes of a field they just parsed
// (the evstore batch decoder interns dictionary entries by their exact
// wire form).
func (r *Reader) Pos() int { return r.pos }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.Fail("wire: truncated varint")
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 { return Unzigzag(r.Uvarint()) }

// Count reads a uvarint and validates it as an element count where
// each element occupies at least min bytes of the remaining input,
// bounding allocations on corrupt data.
func (r *Reader) Count(min int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(r.Remaining()/min) {
		r.Fail("wire: implausible count %d", v)
		return 0
	}
	return int(v)
}

// Bytes reads exactly n raw bytes, aliasing the input buffer.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.Fail("wire: truncated: need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes(r.Count(1))) }

// Uint32 reads a uvarint and range-checks it into a uint32.
func (r *Reader) Uint32() uint32 {
	v := r.Uvarint()
	if v > math.MaxUint32 {
		r.Fail("wire: uint32 overflow")
		return 0
	}
	return uint32(v)
}

// Int reads a signed varint and range-checks it into an int.
func (r *Reader) Int() int {
	v := r.Varint()
	if v < math.MinInt || v > math.MaxInt {
		r.Fail("wire: int overflow")
		return 0
	}
	return int(v)
}

// Time reads an AppendTime instant.
func (r *Reader) Time() time.Time {
	n := r.Varint()
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// Addr reads an AppendAddr address.
func (r *Reader) Addr() netip.Addr {
	n := r.Bytes(1)
	if r.err != nil {
		return netip.Addr{}
	}
	switch n[0] {
	case 0:
		return netip.Addr{}
	case 4:
		b := r.Bytes(4)
		if r.err != nil {
			return netip.Addr{}
		}
		return netip.AddrFrom4([4]byte(b))
	case 16:
		b := r.Bytes(16)
		if r.err != nil {
			return netip.Addr{}
		}
		return netip.AddrFrom16([16]byte(b))
	default:
		r.Fail("wire: bad address length %d", n[0])
		return netip.Addr{}
	}
}

// Prefix reads an AppendPrefix prefix.
func (r *Reader) Prefix() netip.Prefix {
	a := r.Addr()
	if r.err != nil || !a.IsValid() {
		return netip.Prefix{}
	}
	bits := r.Uvarint()
	if bits > uint64(a.BitLen()) {
		r.Fail("wire: bad prefix length %d", bits)
		return netip.Prefix{}
	}
	return netip.PrefixFrom(a, int(bits))
}

// Path reads an AppendPath AS path (nil for the empty path).
func (r *Reader) Path() bgp.ASPath {
	nseg := r.Count(2)
	if nseg == 0 || r.err != nil {
		return nil
	}
	path := make(bgp.ASPath, 0, nseg)
	for i := 0; i < nseg; i++ {
		typ := r.Uvarint()
		nasn := r.Count(1)
		if r.err != nil {
			return nil
		}
		seg := bgp.ASPathSegment{Type: uint8(typ), ASNs: make([]uint32, 0, nasn)}
		for j := 0; j < nasn; j++ {
			seg.ASNs = append(seg.ASNs, r.Uint32())
			if r.err != nil {
				return nil
			}
		}
		path = append(path, seg)
	}
	return path
}

// Comms reads an AppendComms community set (nil for the empty set).
func (r *Reader) Comms() bgp.Communities {
	n := r.Count(1)
	if n == 0 || r.err != nil {
		return nil
	}
	cs := make(bgp.Communities, 0, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += r.Varint()
		if prev < 0 || prev > math.MaxUint32 {
			r.Fail("wire: community overflow")
			return nil
		}
		cs = append(cs, bgp.Community(prev))
	}
	return cs
}
