package pipeline

import (
	"repro/internal/classify"
	"repro/internal/stream"
)

// MergeEvents merges multiple time-sorted event slices (one per collector
// archive) into one globally time-ordered slice, as analyses spanning
// collectors require. Ties keep the input-stream order, so the merge is
// stable and deterministic. It is the materialized wrapper over
// stream.Merge; streaming consumers should merge sources directly.
func MergeEvents(streams ...[]classify.Event) []classify.Event {
	sources := make([]stream.EventSource, len(streams))
	total := 0
	for i, s := range streams {
		sources[i] = stream.FromSlice(s)
		total += len(s)
	}
	out := make([]classify.Event, 0, total)
	for e := range stream.Merge(sources...) {
		out = append(out, e)
	}
	return out
}
