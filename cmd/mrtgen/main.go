// Command mrtgen generates synthetic MRT update archives: either a full
// measurement day (d_mar20-like) or the beacon subset (d_beacon-like),
// optionally scaled to a historical year.
//
// Usage:
//
//	mrtgen -out DIR [-kind day|beacon] [-year 2020] [-scale 1.0] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/collector"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "", "output directory for the per-collector .mrt files (required)")
	kind := flag.String("kind", "day", "dataset kind: day or beacon")
	year := flag.Int("year", 2020, "measurement year (2010-2020)")
	scale := flag.Float64("scale", 1.0, "multiplier on prefixes and peers")
	seed := flag.Int64("seed", 0, "override the generator seed (0 keeps the default)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "mrtgen: -out is required")
		os.Exit(2)
	}

	// The generators hand out one lazy source per (collector, peer)
	// session; archives are written collector by collector without ever
	// materializing the dataset.
	var peers []workload.Peer
	var sources []stream.EventSource
	switch *kind {
	case "day":
		cfg := workload.HistoricalDayConfig(*year)
		cfg.PrefixesV4 = int(float64(cfg.PrefixesV4) * *scale)
		cfg.PrefixesV6 = int(float64(cfg.PrefixesV6) * *scale)
		cfg.PeersPerCollector = max(1, int(float64(cfg.PeersPerCollector)**scale))
		if *seed != 0 {
			cfg.Seed = *seed
		}
		peers, sources = workload.DaySources(cfg)
	case "beacon":
		cfg := workload.HistoricalBeaconConfig(*year)
		cfg.PeersPerCollector = max(1, int(float64(cfg.PeersPerCollector)**scale))
		if *seed != 0 {
			cfg.Seed = *seed
		}
		peers, sources = workload.BeaconSources(cfg)
	default:
		fmt.Fprintf(os.Stderr, "mrtgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	files, err := collector.WriteSourcesDir(peers, sources, *out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrtgen: %v\n", err)
		os.Exit(1)
	}
	total := 0
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n, err := collector.CountRecords(files[name])
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrtgen: verify %s: %v\n", files[name], err)
			os.Exit(1)
		}
		total += n
		fmt.Printf("  %-16s %8d records  %s\n", name, n, files[name])
	}
	fmt.Printf("wrote %d records across %d collector archives in %s\n",
		total, len(files), *out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
