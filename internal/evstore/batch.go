package evstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sync"
	"unsafe"

	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/wire"
)

// This file is the vectorized scan path: decodeBatch parses a block's
// columnar payload straight into classify.Batch column arrays —
// interning dictionary entries into a scan-global classify.Dict so the
// same value decodes exactly once per scan, not once per block — a
// selector evaluates the query's residual time/collector/peer/prefix
// predicates over the columns into a selection vector of surviving row
// indexes, and batchRunner drives the classifier plus a mix of
// BatchAnalyzer and row-fallback analyzers over (batch, selection)
// pairs. Events are only materialized for row-fallback analyzers; the
// row Scan API itself now rides the same decoder and materializes from
// the batch, which is what removed the per-block dictionary
// allocations.

// decodeScratch owns the scan-lifetime decoding state one worker
// reuses across every block it touches: the global dictionary and its
// intern maps, the remap table from block-local to global ids, and the
// batch column arrays. Values already interned cost a map hit per
// block; steady-state decoding of blocks whose dictionary entries have
// all been seen allocates nothing.
type decodeScratch struct {
	dict *classify.Dict

	collIDs map[string]uint32
	asIDs   map[uint32]uint32
	addrIDs map[netip.Addr]uint32
	pfxIDs  map[netip.Prefix]uint32
	// Paths and community sets are interned by their encoded wire bytes
	// (the block dictionary's own key form), so a repeat entry is
	// recognized without decoding it. Equal ids imply equal values;
	// UNEQUAL ids do not imply unequal values (a non-minimal encoding of
	// the same value would intern separately), so ids may only
	// short-circuit equality — exactly how RunBatch uses them.
	// Map keys are views (unsafe.String) over copies carved from
	// keyArena: the payload buffer the lookup key points into is reused
	// per block, so an inserted key must be copied — but into the arena,
	// not a fresh string allocation per entry.
	pathIDs  map[string]uint32
	commIDs  map[string]uint32
	keyArena []byte

	// Decoded path segments, their ASN lists, and community sets are
	// carved out of chunked arenas instead of being allocated one tiny
	// slice at a time: the dictionary retains every decoded value for
	// the whole scan anyway, so per-value allocations only feed the
	// garbage collector's scan load. Carved sub-slices are full-capacity
	// (three-index) and never grow, and a chunk is abandoned — not
	// freed — when exhausted, so previously carved values stay stable.
	segArena  []bgp.ASPathSegment
	asnArena  []uint32
	commArena []bgp.Community

	remap []uint32
	batch classify.Batch
}

func newDecodeScratch() *decodeScratch {
	return &decodeScratch{
		// Collector, peer-address, and prefix entries are interned by
		// value below, so those tables never hold duplicates — the
		// UniqueKeys bijection the classifier's deferred stream
		// tracking relies on.
		dict:    &classify.Dict{UniqueKeys: true},
		collIDs: make(map[string]uint32),
		asIDs:   make(map[uint32]uint32, 64),
		addrIDs: make(map[netip.Addr]uint32, 64),
		pfxIDs:  make(map[netip.Prefix]uint32, 512),
		// Presized for a day-scale scan: path cardinality dominates and
		// incremental map growth would rehash the table ~13 times on the
		// way to several thousand entries.
		pathIDs: make(map[string]uint32, 1<<13),
		commIDs: make(map[string]uint32, 1<<10),
	}
}

// arenaChunk is the element count of a fresh arena chunk — large enough
// to amortize allocation across thousands of dictionary entries, small
// enough that an abandoned tail is cheap.
const arenaChunk = 1 << 14

func arenaSlice[T any](arena []T, n int) (s, next []T) {
	if cap(arena)-len(arena) < n {
		arena = make([]T, 0, max(arenaChunk, n))
	}
	l := len(arena)
	next = arena[: l+n : cap(arena)]
	return next[l : l+n : l+n], next
}

// internKey copies an encoded dictionary key into the key arena and
// returns a string view over the copy, suitable as a stable intern-map
// key. Encoded keys are never empty (they begin with a count byte).
func (ds *decodeScratch) internKey(key []byte) string {
	var kc []byte
	kc, ds.keyArena = arenaSlice(ds.keyArena, len(key))
	copy(kc, key)
	return unsafe.String(&kc[0], len(kc))
}

// decodePath decodes an AppendPath encoding that skipPath has already
// validated, carving the segment and ASN slices from the scratch arenas.
func (ds *decodeScratch) decodePath(key []byte) bgp.ASPath {
	r := wire.NewReader(key)
	nseg := r.Count(2)
	if nseg == 0 {
		return nil
	}
	var segs []bgp.ASPathSegment
	segs, ds.segArena = arenaSlice(ds.segArena, nseg)
	for i := range segs {
		typ := r.Uvarint()
		nasn := r.Count(1)
		var asns []uint32
		asns, ds.asnArena = arenaSlice(ds.asnArena, nasn)
		for j := range asns {
			asns[j] = r.Uint32()
		}
		segs[i] = bgp.ASPathSegment{Type: uint8(typ), ASNs: asns}
	}
	return bgp.ASPath(segs)
}

// decodeComms decodes an AppendComms encoding that skipComms has already
// validated, carving the set from the scratch arena.
func (ds *decodeScratch) decodeComms(key []byte) bgp.Communities {
	r := wire.NewReader(key)
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	var cs []bgp.Community
	cs, ds.commArena = arenaSlice(ds.commArena, n)
	prev := int64(0)
	for i := range cs {
		prev += r.Varint()
		cs[i] = bgp.Community(prev)
	}
	return bgp.Communities(cs)
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// skipPath advances past an AppendPath encoding with the same
// validation as Reader.Path, without building the path.
func skipPath(r *wire.Reader) {
	nseg := r.Count(2)
	if nseg == 0 || r.Err() != nil {
		return
	}
	for i := 0; i < nseg; i++ {
		r.Uvarint() // segment type
		nasn := r.Count(1)
		if r.Err() != nil {
			return
		}
		for j := 0; j < nasn; j++ {
			r.Uint32()
			if r.Err() != nil {
				return
			}
		}
	}
}

// skipComms advances past an AppendComms encoding with the same
// validation as Reader.Comms.
func skipComms(r *wire.Reader) {
	n := r.Count(1)
	if n == 0 || r.Err() != nil {
		return
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += r.Varint()
		if prev < 0 || prev > math.MaxUint32 {
			r.Fail("wire: community overflow")
			return
		}
	}
}

// readIDColumn reads one column's n per-event dictionary indexes,
// range-checking against the block-local dictionary size and remapping
// into dst's global ids. A nil dst validates without storing (the
// column is not projected). The loop decodes straight off the payload
// with a single-byte fast path — id columns are the bulk of a block's
// varints and dictionaries are rarely larger than 127 entries, so the
// generic sticky-error Reader machinery would dominate the decode.
func readIDColumn(r *wire.Reader, payload []byte, n, dictLen int, remap []uint32, dst []uint32) {
	if r.Err() != nil {
		return
	}
	pos, start := r.Pos(), r.Pos()
	dl := uint64(dictLen)
	for i := 0; i < n; i++ {
		var id uint64
		if pos < len(payload) && payload[pos] < 0x80 {
			id = uint64(payload[pos])
			pos++
		} else {
			v, sz := binary.Uvarint(payload[pos:])
			if sz <= 0 {
				r.Fail("wire: truncated varint")
				return
			}
			id = v
			pos += sz
		}
		if id >= dl {
			r.Fail("evstore: dictionary index %d out of range (dict size %d)", id, dictLen)
			return
		}
		if dst != nil {
			dst[i] = remap[id]
		}
	}
	r.Bytes(pos - start)
}

// decodeBatch parses a columnar payload into the scratch's batch,
// decoding only the projected columns (times, flags, and MED always).
// It accepts and rejects exactly the payloads decodeBlock does —
// unprojected columns are still parsed and validated at the wire
// level, just never interned or stored. The returned batch aliases the
// scratch and the payload; it is valid only until the next decode.
func (ds *decodeScratch) decodeBatch(payload []byte, proj classify.Projection) (*classify.Batch, error) {
	r := wire.NewReader(payload)
	rawN := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rawN > maxBlockEvents || rawN > uint64(r.Remaining()) {
		return nil, fmt.Errorf("evstore: implausible block event count %d", rawN)
	}
	n := int(rawN)
	b := &ds.batch
	b.N, b.Dict, b.Cols = n, ds.dict, proj

	// Times: zigzag deltas, decoded straight off the payload (the same
	// fast path as readIDColumn — one varint per event adds up).
	b.Times = growI64(b.Times, n)
	t := int64(0)
	pos := r.Pos()
	for i := 0; i < n; i++ {
		v, sz := binary.Uvarint(payload[pos:])
		if sz <= 0 {
			r.Fail("wire: truncated varint")
			return nil, r.Err()
		}
		pos += sz
		t += wire.Unzigzag(v)
		b.Times[i] = t
	}
	r.Bytes(pos - r.Pos())

	// Collectors: length-prefixed strings.
	nd := r.Count(1)
	remap := ds.remap[:0]
	if proj&classify.ProjCollector != 0 {
		for i := 0; i < nd; i++ {
			raw := r.Bytes(r.Count(1))
			if r.Err() != nil {
				break
			}
			gid, ok := ds.collIDs[string(raw)]
			if !ok {
				gid = uint32(len(ds.dict.Collectors))
				s := string(raw)
				ds.dict.Collectors = append(ds.dict.Collectors, s)
				ds.collIDs[s] = gid
			}
			remap = append(remap, gid)
		}
		b.Collector = growU32(b.Collector, n)
		readIDColumn(r, payload, n, nd, remap, b.Collector)
	} else {
		for i := 0; i < nd; i++ {
			r.Bytes(r.Count(1))
		}
		readIDColumn(r, payload, n, nd, nil, nil)
	}

	// Peer ASNs: uvarint values.
	nd = r.Count(1)
	remap = remap[:0]
	if proj&classify.ProjPeerAS != 0 {
		for i := 0; i < nd; i++ {
			as := r.Uint32()
			if r.Err() != nil {
				break
			}
			gid, ok := ds.asIDs[as]
			if !ok {
				gid = uint32(len(ds.dict.PeerASNs))
				ds.dict.PeerASNs = append(ds.dict.PeerASNs, as)
				ds.asIDs[as] = gid
			}
			remap = append(remap, gid)
		}
		b.PeerAS = growU32(b.PeerAS, n)
		readIDColumn(r, payload, n, nd, remap, b.PeerAS)
	} else {
		for i := 0; i < nd; i++ {
			r.Uint32()
		}
		readIDColumn(r, payload, n, nd, nil, nil)
	}

	// Peer addresses.
	nd = r.Count(1)
	remap = remap[:0]
	if proj&classify.ProjPeerAddr != 0 {
		for i := 0; i < nd; i++ {
			a := r.Addr()
			if r.Err() != nil {
				break
			}
			gid, ok := ds.addrIDs[a]
			if !ok {
				gid = uint32(len(ds.dict.PeerAddrs))
				ds.dict.PeerAddrs = append(ds.dict.PeerAddrs, a)
				ds.addrIDs[a] = gid
			}
			remap = append(remap, gid)
		}
		b.PeerAddr = growU32(b.PeerAddr, n)
		readIDColumn(r, payload, n, nd, remap, b.PeerAddr)
	} else {
		for i := 0; i < nd; i++ {
			r.Addr()
		}
		readIDColumn(r, payload, n, nd, nil, nil)
	}

	// Prefixes.
	nd = r.Count(1)
	remap = remap[:0]
	if proj&classify.ProjPrefix != 0 {
		for i := 0; i < nd; i++ {
			p := r.Prefix()
			if r.Err() != nil {
				break
			}
			gid, ok := ds.pfxIDs[p]
			if !ok {
				gid = uint32(len(ds.dict.Prefixes))
				ds.dict.Prefixes = append(ds.dict.Prefixes, p)
				ds.pfxIDs[p] = gid
			}
			remap = append(remap, gid)
		}
		b.Prefix = growU32(b.Prefix, n)
		readIDColumn(r, payload, n, nd, remap, b.Prefix)
	} else {
		for i := 0; i < nd; i++ {
			r.Prefix()
		}
		readIDColumn(r, payload, n, nd, nil, nil)
	}

	// AS paths, interned by encoded bytes; a repeat entry never
	// re-decodes. The sub-reader decode on a miss cannot fail: skipPath
	// validated the exact same bytes.
	nd = r.Count(1)
	remap = remap[:0]
	if proj&classify.ProjPath != 0 {
		for i := 0; i < nd; i++ {
			start := r.Pos()
			skipPath(r)
			if r.Err() != nil {
				break
			}
			key := payload[start:r.Pos()]
			gid, ok := ds.pathIDs[string(key)]
			if !ok {
				gid = uint32(len(ds.dict.Paths))
				ds.dict.Paths = append(ds.dict.Paths, ds.decodePath(key))
				ds.pathIDs[ds.internKey(key)] = gid
			}
			remap = append(remap, gid)
		}
		b.Path = growU32(b.Path, n)
		readIDColumn(r, payload, n, nd, remap, b.Path)
	} else {
		for i := 0; i < nd; i++ {
			skipPath(r)
		}
		readIDColumn(r, payload, n, nd, nil, nil)
	}

	// Community sets, interned by encoded bytes. The dict holds the
	// decoded set as stored (possibly non-canonical); consumers that
	// compare sets canonicalize, matching row-path semantics.
	nd = r.Count(1)
	remap = remap[:0]
	if proj&classify.ProjComms != 0 {
		for i := 0; i < nd; i++ {
			start := r.Pos()
			skipComms(r)
			if r.Err() != nil {
				break
			}
			key := payload[start:r.Pos()]
			gid, ok := ds.commIDs[string(key)]
			if !ok {
				gid = uint32(len(ds.dict.CommSets))
				ds.dict.CommSets = append(ds.dict.CommSets, ds.decodeComms(key))
				ds.commIDs[ds.internKey(key)] = gid
			}
			remap = append(remap, gid)
		}
		b.Comms = growU32(b.Comms, n)
		readIDColumn(r, payload, n, nd, remap, b.Comms)
	} else {
		for i := 0; i < nd; i++ {
			skipComms(r)
		}
		readIDColumn(r, payload, n, nd, nil, nil)
	}

	// Keep the grown remap backing array for the next block — the
	// local slice may have outgrown (and replaced) ds.remap above.
	ds.remap = remap[:0]

	// Flag bitsets (aliasing the payload) and MED values.
	nb := (n + 7) / 8
	b.Withdraw = classify.Bitset(r.Bytes(nb))
	b.HasMED = classify.Bitset(r.Bytes(nb))
	if err := r.Err(); err != nil {
		return nil, err
	}
	b.MED = growU32(b.MED, n)
	for i := 0; i < n; i++ {
		b.MED[i] = 0
		if b.HasMED.Get(i) {
			med := r.Uvarint()
			if med > math.MaxUint32 {
				r.Fail("evstore: MED overflow")
			}
			b.MED[i] = uint32(med)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// residualProjection returns the columns the query's per-event
// residual predicate reads.
func (cq *compiledQuery) residualProjection() classify.Projection {
	var p classify.Projection
	if cq.collectors != nil {
		p |= classify.ProjCollector
	}
	if cq.peerAS != nil {
		p |= classify.ProjPeerAS
	}
	if cq.hasPrefix {
		p |= classify.ProjPrefix
	}
	return p
}

// selector evaluates a compiled query's residual predicate over batch
// columns into a selection vector. Collector/peer/prefix verdicts are
// cached per global dictionary id (0 unknown, 1 pass, 2 fail) — each
// distinct value is tested once per scan, and per event the residual
// is integer compares and table lookups.
type selector struct {
	cq      *compiledQuery
	trivial bool // no residual at all: selection is the identity
	collOK  []uint8
	asOK    []uint8
	pfxOK   []uint8
	ident   []int32
	sel     []int32
}

func newSelector(cq *compiledQuery) *selector {
	return &selector{
		cq: cq,
		trivial: cq.fromNano == math.MinInt64 && cq.toNano == math.MaxInt64 &&
			cq.collectors == nil && cq.peerAS == nil && !cq.hasPrefix,
	}
}

func growVerdicts(v []uint8, n int) []uint8 {
	for len(v) < n {
		v = append(v, 0)
	}
	return v
}

// selection returns the ascending indexes of b's events matching the
// query — the exact rows cq.match would pass. The returned slice is
// scratch, valid until the next call.
func (s *selector) selection(b *classify.Batch) []int32 {
	n := b.N
	if s.trivial {
		for len(s.ident) < n {
			s.ident = append(s.ident, int32(len(s.ident)))
		}
		return s.ident[:n]
	}
	cq := s.cq
	sel := s.sel[:0]
	for i := 0; i < n; i++ {
		if t := b.Times[i]; t < cq.fromNano || t >= cq.toNano {
			continue
		}
		if cq.collectors != nil {
			id := b.Collector[i]
			s.collOK = growVerdicts(s.collOK, int(id)+1)
			v := s.collOK[id]
			if v == 0 {
				v = 2
				if cq.collectors[b.Dict.Collectors[id]] {
					v = 1
				}
				s.collOK[id] = v
			}
			if v != 1 {
				continue
			}
		}
		if cq.peerAS != nil {
			id := b.PeerAS[i]
			s.asOK = growVerdicts(s.asOK, int(id)+1)
			v := s.asOK[id]
			if v == 0 {
				v = 2
				if cq.peerAS[b.Dict.PeerASNs[id]] {
					v = 1
				}
				s.asOK[id] = v
			}
			if v != 1 {
				continue
			}
		}
		if cq.hasPrefix {
			id := b.Prefix[i]
			s.pfxOK = growVerdicts(s.pfxOK, int(id)+1)
			v := s.pfxOK[id]
			if v == 0 {
				v = 2
				p := b.Dict.Prefixes[id]
				if p.IsValid() && p.Bits() >= cq.q.PrefixRange.Bits() &&
					cq.q.PrefixRange.Contains(p.Addr()) {
					v = 1
				}
				s.pfxOK[id] = v
			}
			if v != 1 {
				continue
			}
		}
		sel = append(sel, int32(i))
	}
	s.sel = sel
	return sel
}

// batchRunner drives one classifier and an analyzer set over (batch,
// selection) pairs: every selected event feeds classifier state, a
// tally window gates which reach the analyzers (the warm-up
// convention), BatchAnalyzers get the columns, and the rest get
// materialized events — both in one pass.
type batchRunner struct {
	cl     *classify.Classifier
	batchA []classify.BatchAnalyzer
	rowA   []classify.Analyzer
	// proj is what the analyzer mix needs decoded: the classifier's
	// columns, each batch analyzer's projection, and everything if any
	// row-fallback analyzer must be handed materialized events.
	proj classify.Projection

	tallyFrom, tallyTo int64
	tallyAll           bool

	results  []classify.Result
	tallySel []int32
}

func newBatchRunner(cl *classify.Classifier, analyzers []classify.Analyzer, tally TimeRange) *batchRunner {
	run := &batchRunner{cl: cl, proj: classify.ClassifierProjection}
	for _, a := range analyzers {
		if ba, ok := a.(classify.BatchAnalyzer); ok {
			run.batchA = append(run.batchA, ba)
			run.proj |= ba.Project()
		} else {
			run.rowA = append(run.rowA, a)
		}
	}
	if len(run.rowA) > 0 {
		run.proj |= classify.ProjAll
	}
	run.tallyFrom, run.tallyTo = math.MinInt64, math.MaxInt64
	if !tally.From.IsZero() {
		run.tallyFrom = tally.From.UnixNano()
	}
	if !tally.To.IsZero() {
		run.tallyTo = tally.To.UnixNano()
	}
	run.tallyAll = run.tallyFrom == math.MinInt64 && run.tallyTo == math.MaxInt64
	return run
}

// observe classifies one batch's selected events and fans the tallied
// ones out to the analyzers.
func (run *batchRunner) observe(b *classify.Batch, sel []int32) {
	if len(run.results) < b.N {
		run.results = make([]classify.Result, b.N)
	}
	results := run.results
	run.cl.RunBatch(b, sel, results)
	tsel := sel
	if !run.tallyAll {
		tsel = run.tallySel[:0]
		for _, si := range sel {
			if t := b.Times[si]; t >= run.tallyFrom && t < run.tallyTo {
				tsel = append(tsel, si)
			}
		}
		run.tallySel = tsel
	}
	for _, a := range run.batchA {
		a.ObserveBatch(results, b, tsel)
	}
	if len(run.rowA) > 0 {
		for _, si := range tsel {
			e := b.Event(int(si))
			for _, a := range run.rowA {
				a.Observe(results[si], e)
			}
		}
	}
}

// scratchPool recycles decode scratch across scans. A scan that draws
// a warm scratch decodes in steady state from its first block: the
// global dictionary already holds the store's values, so dictionary
// entries cost an intern-map hit instead of a decode plus insert, and
// the column arrays and arenas are already sized. Interning is by
// value, so a shared dictionary growing monotonically across scans
// (and even across stores) never changes an issued gid's meaning.
// Callers must finish resolving analyzer id-state before release —
// see classify.BatchFlusher.
var scratchPool = sync.Pool{New: func() any { return newDecodeScratch() }}

// finish ends the batch stream: analyzers that deferred id-keyed
// state resolve it and drop their dictionary references, making the
// scan's decode scratch safe to recycle.
func (run *batchRunner) finish() {
	for _, a := range run.batchA {
		if f, ok := a.(classify.BatchFlusher); ok {
			f.FlushBatch()
		}
	}
}

// release returns the decode scratch to the pool. Only call once every
// consumer of this scan's batches has resolved its id-keyed state: a
// later scan may grow the shared dictionary concurrently. A scratch
// whose dictionary has grown pathologically large is dropped instead
// of pinned in the pool.
func (br *blockReader) release() {
	if br.scratch == nil {
		return
	}
	if len(br.scratch.dict.Paths) < 1<<19 {
		scratchPool.Put(br.scratch)
	}
	br.scratch = nil
}

// selection applies cq's residual over a decoded batch via the
// reader's cached selector (rebuilt when the query changes).
func (br *blockReader) selection(cq *compiledQuery, b *classify.Batch) []int32 {
	if br.slr == nil || br.slr.cq != cq {
		br.slr = newSelector(cq)
	}
	return br.slr.selection(b)
}

// scanPartitionBatch streams one partition's matching (batch,
// selection) pairs; more reports whether the consumer wants to
// continue. Pushdown and cancellation semantics are identical to the
// row scan — this IS the scan kernel; the row path materializes from
// it.
func scanPartitionBatch(ctx context.Context, path string, cq *compiledQuery, br *blockReader, st *ScanStats, proj classify.Projection, fn func(b *classify.Batch, sel []int32) bool) (more bool, err error) {
	p, f, err := readPartition(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	if cq.collectors != nil && !cq.collectors[p.collector] {
		if st != nil {
			st.PartitionsPruned++
		}
		return true, nil
	}
	if !cq.matchSummary(p.agg, false) {
		if st != nil {
			st.PartitionsPruned++
		}
		return true, nil
	}
	if st != nil {
		st.Blocks += len(p.blocks)
	}
	proj |= cq.residualProjection()

	// The block summaries are already in memory: select the matching
	// blocks up front, so the decode-ahead worker knows exactly what
	// to fetch.
	blocks := br.pf.blocks[:0]
	for _, bm := range p.blocks {
		if !cq.matchSummary(bm.sum, true) {
			if st != nil {
				st.BlocksPruned++
			}
			continue
		}
		blocks = append(blocks, bm)
	}
	br.pf.blocks = blocks
	if len(blocks) == 0 {
		return true, nil
	}
	if br.scratch == nil {
		br.scratch = scratchPool.Get().(*decodeScratch)
	}

	handle := func(payload []byte, bm blockMeta, prefetched bool) (bool, error) {
		b, err := br.scratch.decodeBatch(payload, proj)
		if err != nil {
			return false, fmt.Errorf("%s: %w", path, err)
		}
		if st != nil {
			st.countBlock(bm, prefetched)
		}
		sel := br.selection(cq, b)
		if len(sel) == 0 {
			return true, nil
		}
		if st != nil {
			st.Events += len(sel)
		}
		return fn(b, sel), nil
	}

	if len(blocks) > 1 {
		// Decode-ahead: read+decompress the next blocks on a worker
		// while this one is decoded and classified.
		return br.pf.run(ctx, f, blocks, handle)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	payload, err := br.readBlockPayload(f, blocks[0])
	if err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	return handle(payload, blocks[0], false)
}

// scanEntriesBatch is scanEntries for the batch kernel: name-level
// prune plus per-partition batch scan over a partition list.
func scanEntriesBatch(ctx context.Context, entries []storeEntry, cq *compiledQuery, br *blockReader, st *ScanStats, proj classify.Projection, fn func(b *classify.Batch, sel []int32) bool) (more bool, err error) {
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if st != nil {
			st.Partitions++
		}
		if cq.pruneByName(e) {
			if st != nil {
				st.PartitionsPruned++
			}
			continue
		}
		more, err := scanPartitionBatch(ctx, e.path, cq, br, st, proj, fn)
		if err != nil {
			return false, err
		}
		if !more {
			return false, nil
		}
	}
	return true, nil
}

// ScanAnalyze classifies and analyzes the store's events matching q in
// one sequential pass over the batch kernels — the vectorized
// equivalent of classify.RunAll over Scan(dir, q), bit-identical in
// results. Events matching q feed classifier state; only those inside
// tally (zero = everything) reach the analyzers, the same warm-up
// convention as ScanParallel. Analyzers implementing BatchAnalyzer
// consume columns directly; the rest receive materialized events.
//
// The scan stops at the tally window's upper bound: classification is
// causal (an event's result depends only on events at or before it),
// so events at or after tally.To cannot influence any tallied result.
// ScanStats therefore reflect the clamped scan, not all of q.
func ScanAnalyze(ctx context.Context, dir string, q Query, tally TimeRange, analyzers ...classify.Analyzer) (ScanStats, error) {
	if !tally.To.IsZero() && (q.Window.To.IsZero() || tally.To.Before(q.Window.To)) {
		q.Window.To = tally.To
	}
	var st ScanStats
	entries, err := listPartitions(dir)
	if err != nil {
		return st, err
	}
	if len(entries) == 0 {
		return st, noPartitionsError(dir)
	}
	cq := compileQuery(q)
	var br blockReader
	run := newBatchRunner(classify.New(), analyzers, tally)
	_, err = scanEntriesBatch(ctx, entries, cq, &br, &st, run.proj, func(b *classify.Batch, sel []int32) bool {
		run.observe(b, sel)
		return true
	})
	// The caller owns the analyzers beyond this scan: flush their
	// id-keyed state before recycling the scratch they'd resolve it
	// against.
	run.finish()
	br.release()
	return st, err
}
