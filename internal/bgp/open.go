package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Capability codes used in OPEN optional parameters (RFC 5492).
const (
	CapMultiprotocol uint8 = 1
	CapRouteRefresh  uint8 = 2
	CapFourByteAS    uint8 = 65
)

// Capability is one advertised capability.
type Capability struct {
	Code  uint8
	Value []byte
}

// Open is the OPEN message.
type Open struct {
	Version      uint8
	ASN          uint32 // sender AS; wire "My Autonomous System" caps at AS_TRANS
	HoldTime     uint16
	RouterID     netip.Addr
	Capabilities []Capability
}

// NewOpen builds a standard OPEN advertising 4-byte AS support and
// multiprotocol IPv4+IPv6 unicast.
func NewOpen(asn uint32, routerID netip.Addr, holdTime uint16) *Open {
	mpCap := func(afi uint16) []byte {
		v := binary.BigEndian.AppendUint16(nil, afi)
		return append(v, 0, SAFIUnicast)
	}
	return &Open{
		Version:  4,
		ASN:      asn,
		HoldTime: holdTime,
		RouterID: routerID,
		Capabilities: []Capability{
			{Code: CapMultiprotocol, Value: mpCap(AFIIPv4)},
			{Code: CapMultiprotocol, Value: mpCap(AFIIPv6)},
			{Code: CapFourByteAS, Value: binary.BigEndian.AppendUint32(nil, asn)},
		},
	}
}

// Type implements Message.
func (*Open) Type() uint8 { return TypeOpen }

func (o *Open) appendBody(dst []byte, _ MarshalOptions) ([]byte, error) {
	dst = append(dst, o.Version)
	wireAS := o.ASN
	if wireAS > 0xFFFF {
		wireAS = ASTrans
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(wireAS))
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	if !o.RouterID.Is4() {
		return nil, fmt.Errorf("bgp: router ID %v is not IPv4", o.RouterID)
	}
	rid := o.RouterID.As4()
	dst = append(dst, rid[:]...)

	var caps []byte
	for _, c := range o.Capabilities {
		if len(c.Value) > 255 {
			return nil, fmt.Errorf("bgp: capability %d value too long", c.Code)
		}
		caps = append(caps, c.Code, byte(len(c.Value)))
		caps = append(caps, c.Value...)
	}
	if len(caps) == 0 {
		return append(dst, 0), nil
	}
	// One optional parameter of type 2 (Capabilities).
	if len(caps) > 253 {
		return nil, fmt.Errorf("bgp: capability block too long: %d bytes", len(caps))
	}
	dst = append(dst, byte(len(caps)+2), 2, byte(len(caps)))
	return append(dst, caps...), nil
}

func decodeOpen(b []byte) (*Open, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("bgp: OPEN body shorter than 10 bytes")
	}
	o := &Open{
		Version:  b[0],
		ASN:      uint32(binary.BigEndian.Uint16(b[1:3])),
		HoldTime: binary.BigEndian.Uint16(b[3:5]),
		RouterID: netip.AddrFrom4([4]byte(b[5:9])),
	}
	optLen := int(b[9])
	if len(b) != 10+optLen {
		return nil, fmt.Errorf("bgp: OPEN optional parameter length %d does not match body", optLen)
	}
	opts := b[10:]
	for len(opts) > 0 {
		if len(opts) < 2 {
			return nil, fmt.Errorf("bgp: truncated OPEN optional parameter header")
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return nil, fmt.Errorf("bgp: truncated OPEN optional parameter")
		}
		val := opts[2 : 2+plen]
		opts = opts[2+plen:]
		if ptype != 2 {
			continue // ignore non-capability parameters
		}
		for len(val) > 0 {
			if len(val) < 2 {
				return nil, fmt.Errorf("bgp: truncated capability header")
			}
			code, clen := val[0], int(val[1])
			if len(val) < 2+clen {
				return nil, fmt.Errorf("bgp: truncated capability value")
			}
			o.Capabilities = append(o.Capabilities, Capability{
				Code:  code,
				Value: append([]byte(nil), val[2:2+clen]...),
			})
			val = val[2+clen:]
		}
	}
	// Recover the true 4-byte ASN if advertised.
	for _, c := range o.Capabilities {
		if c.Code == CapFourByteAS && len(c.Value) == 4 {
			o.ASN = binary.BigEndian.Uint32(c.Value)
		}
	}
	return o, nil
}

// SupportsFourByteAS reports whether the 4-octet AS capability is present.
func (o *Open) SupportsFourByteAS() bool {
	for _, c := range o.Capabilities {
		if c.Code == CapFourByteAS {
			return true
		}
	}
	return false
}
