// Package topo builds the network topologies used by the experiments: the
// paper's Figure 1 laboratory topology and synthetic Internet-like AS
// graphs for the measurement workloads.
package topo

import (
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/router"
)

// Lab AS numbers for the Figure 1 topology.
const (
	ASX uint32 = 65100 // transit between Y and the collector
	ASY uint32 = 65200 // three-router AS that may geo-tag
	ASZ uint32 = 65300 // origin AS
	ASC uint32 = 65400 // route collector
)

// Lab community values Y2/Y3 attach on ingress in Exp2–Exp4 (the paper's
// Y:300 and Y:400 geo tags).
var (
	TagY300 = bgp.NewCommunity(uint16(ASY), 300)
	TagY400 = bgp.NewCommunity(uint16(ASY), 400)
)

// LabConfig selects the policy variations distinguishing Exp1–Exp4.
type LabConfig struct {
	// Behavior is the vendor profile installed on every router, as the
	// paper configures all routers with one software image per run.
	Behavior router.Behavior
	// GeoTags makes Y2 add Y:300 and Y3 add Y:400 on ingress from Z.
	GeoTags bool
	// X1CleanEgress strips all communities on X1's export to the collector.
	X1CleanEgress bool
	// X1CleanIngress strips all communities on X1's import from Y1.
	X1CleanIngress bool
}

// Lab is the constructed Figure 1 network.
type Lab struct {
	Net                    *router.Network
	C1, X1, Y1, Y2, Y3, Z1 *router.Router
	// Prefix is the beacon-style prefix Z1 originates.
	Prefix netip.Prefix
}

// BuildLab constructs the Figure 1 topology:
//
//	C1 — X1 — Y1 — {Y2, Y3} — Z1   (Y1,Y2,Y3 form an iBGP full mesh)
//
// and lets Z1 originate the test prefix. The returned network has already
// converged with an empty trace.
func BuildLab(start time.Time, cfg LabConfig) (*Lab, error) {
	n := router.NewNetwork(start)
	// The lab is tiny and its experiments inspect individual messages, so
	// the full-trace sink is the right default here.
	n.EnableTrace()
	lab := &Lab{
		Net:    n,
		Prefix: netip.MustParsePrefix("84.205.64.0/24"),
	}
	id := func(a, b byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 255, a, b}) }
	lab.C1 = n.AddRouter("C1", ASC, id(4, 1), cfg.Behavior)
	lab.X1 = n.AddRouter("X1", ASX, id(1, 1), cfg.Behavior)
	lab.Y1 = n.AddRouter("Y1", ASY, id(2, 1), cfg.Behavior)
	lab.Y2 = n.AddRouter("Y2", ASY, id(2, 2), cfg.Behavior)
	lab.Y3 = n.AddRouter("Y3", ASY, id(2, 3), cfg.Behavior)
	lab.Z1 = n.AddRouter("Z1", ASZ, id(3, 1), cfg.Behavior)

	addr := func(s string) netip.Addr { return netip.MustParseAddr(s) }

	// X1 — C1 (eBGP to the collector).
	var x1Export router.Policy
	if cfg.X1CleanEgress {
		x1Export = router.Policy{router.StripAllCommunities()}
	}
	n.Connect(lab.X1, lab.C1, router.SessionConfig{
		AAddr: addr("10.0.41.1"), BAddr: addr("10.0.41.4"),
		AExport: x1Export,
	})

	// Y1 — X1 (eBGP).
	var x1Import router.Policy
	if cfg.X1CleanIngress {
		x1Import = router.Policy{router.StripAllCommunities()}
	}
	n.Connect(lab.Y1, lab.X1, router.SessionConfig{
		AAddr: addr("10.0.12.2"), BAddr: addr("10.0.12.1"),
		BImport: x1Import,
	})

	// iBGP full mesh inside Y.
	n.Connect(lab.Y1, lab.Y2, router.SessionConfig{
		AAddr: addr("10.1.12.1"), BAddr: addr("10.1.12.2"),
	})
	n.Connect(lab.Y1, lab.Y3, router.SessionConfig{
		AAddr: addr("10.1.13.1"), BAddr: addr("10.1.13.3"),
	})
	n.Connect(lab.Y2, lab.Y3, router.SessionConfig{
		AAddr: addr("10.1.23.2"), BAddr: addr("10.1.23.3"),
	})

	// Y2 — Z1 and Y3 — Z1 (eBGP), with optional ingress geo-tagging.
	var y2Import, y3Import router.Policy
	if cfg.GeoTags {
		y2Import = router.Policy{router.AddCommunity(TagY300)}
		y3Import = router.Policy{router.AddCommunity(TagY400)}
	}
	n.Connect(lab.Y2, lab.Z1, router.SessionConfig{
		AAddr: addr("10.0.23.2"), BAddr: addr("10.0.23.1"),
		AImport: y2Import,
	})
	n.Connect(lab.Y3, lab.Z1, router.SessionConfig{
		AAddr: addr("10.0.33.3"), BAddr: addr("10.0.33.1"),
		AImport: y3Import,
	})

	lab.Z1.Originate(lab.Prefix, nil)
	if _, err := n.Run(); err != nil {
		return nil, err
	}
	n.ClearTrace()
	return lab, nil
}

// CollectorFeedIdentity describes C1's single collector feed — the
// session X1 announces over — in the map shape the capture sinks and MRT
// archivers expect.
func (l *Lab) CollectorFeedIdentity() (collectorRouter string, peerAS map[string]uint32, peerAddr map[string]netip.Addr) {
	return "C1",
		map[string]uint32{"X1": ASX},
		map[string]netip.Addr{"X1": netip.MustParseAddr("10.0.41.1")}
}

// FailY1Y2 disables the Y1–Y2 link, the event every lab experiment uses to
// induce updates, and runs the network to quiescence.
func (l *Lab) FailY1Y2() error {
	if err := l.Net.SetSession("Y1", "Y2", false); err != nil {
		return err
	}
	_, err := l.Net.Run()
	return err
}

// RestoreY1Y2 re-enables the Y1–Y2 link and reconverges.
func (l *Lab) RestoreY1Y2() error {
	if err := l.Net.SetSession("Y1", "Y2", true); err != nil {
		return err
	}
	_, err := l.Net.Run()
	return err
}
