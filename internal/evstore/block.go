package evstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// Prefix membership filter
// ---------------------------------------------------------------------------

// prefixFilter is a bloom filter over prefix keys. Each stored prefix
// inserts one key per /8 ancestor level up to its own length, so a
// containment query at bits b probes the filter at level b - b%8 > 0
// and prunes blocks that hold nothing under the queried range.
type prefixFilter struct {
	keys map[string]struct{}
}

const filterHashes = 3

// prefixKey builds the filter key for addr masked at level bits.
func prefixKey(addr netip.Addr, bits int) string {
	masked := netip.PrefixFrom(addr, bits).Masked().Addr()
	b16 := masked.As16()
	key := make([]byte, 0, 18)
	key = append(key, b16[:]...)
	key = append(key, byte(bits))
	if masked.Is4() {
		key = append(key, 4)
	} else {
		key = append(key, 6)
	}
	return string(key)
}

// add inserts a stored prefix's keys: every /8 multiple level up to and
// including its own length.
func (f *prefixFilter) add(p netip.Prefix) {
	if !p.IsValid() {
		return
	}
	if f.keys == nil {
		f.keys = make(map[string]struct{})
	}
	for l := 8; l <= p.Bits(); l += 8 {
		f.keys[prefixKey(p.Addr(), l)] = struct{}{}
	}
	if b := p.Bits(); b%8 != 0 || b == 0 {
		f.keys[prefixKey(p.Addr(), b)] = struct{}{}
	}
}

// filterPositions derives the bit positions of key in a filter of mbits
// bits (mbits must be a power of two).
func filterPositions(key string, mbits uint32) [filterHashes]uint32 {
	h := fnv.New64a()
	h.Write([]byte(key))
	sum := h.Sum64()
	h1, h2 := uint32(sum>>32), uint32(sum)|1
	var pos [filterHashes]uint32
	for i := range pos {
		pos[i] = (h1 + uint32(i)*h2) & (mbits - 1)
	}
	return pos
}

// bits renders the accumulated keys as a bloom bit array sized to the
// key count (~10 bits/key, clamped to [256, 32768] bits).
func (f *prefixFilter) bits() []byte {
	if len(f.keys) == 0 {
		return nil
	}
	want := 10 * len(f.keys)
	mbits := uint32(256)
	for mbits < uint32(want) && mbits < 32768 {
		mbits *= 2
	}
	out := make([]byte, mbits/8)
	for key := range f.keys {
		for _, p := range filterPositions(key, mbits) {
			out[p/8] |= 1 << (p % 8)
		}
	}
	return out
}

// filterMaybeContains probes a serialized filter for key; an empty or
// invalid-size filter conservatively reports true.
func filterMaybeContains(filter []byte, key string) bool {
	n := uint32(len(filter))
	if n == 0 || n&(n-1) != 0 {
		return true
	}
	mbits := n * 8
	for _, p := range filterPositions(key, mbits) {
		if filter[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Block summary
// ---------------------------------------------------------------------------

// blockSummary is the footer-resident pushdown metadata of one block.
type blockSummary struct {
	count      int
	tmin, tmax int64 // unix nanoseconds, inclusive
	peerAS     []uint32
	// minAddr/maxAddr bound the prefix addresses (netip.Addr.Compare
	// order); invalid when the block has no valid prefixes.
	minAddr, maxAddr netip.Addr
	filter           []byte
}

// merge widens s to also cover o — the partition-level aggregate. The
// bloom filters are not merged (they may differ in size); partition
// pruning relies on the other dimensions.
func (s *blockSummary) merge(o blockSummary) {
	if s.count == 0 {
		peerAS := append([]uint32(nil), o.peerAS...)
		*s = o
		s.peerAS = peerAS
		s.filter = nil
		return
	}
	s.count += o.count
	if o.tmin < s.tmin {
		s.tmin = o.tmin
	}
	if o.tmax > s.tmax {
		s.tmax = o.tmax
	}
	s.peerAS = unionSorted(s.peerAS, o.peerAS)
	if o.minAddr.IsValid() && (!s.minAddr.IsValid() || o.minAddr.Compare(s.minAddr) < 0) {
		s.minAddr = o.minAddr
	}
	if o.maxAddr.IsValid() && (!s.maxAddr.IsValid() || o.maxAddr.Compare(s.maxAddr) > 0) {
		s.maxAddr = o.maxAddr
	}
	s.filter = nil
}

// unionSorted merges two ascending uint32 slices without duplicates.
func unionSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func (s blockSummary) append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.count))
	dst = wire.AppendVarint(dst, s.tmin)
	dst = binary.AppendUvarint(dst, uint64(s.tmax-s.tmin))
	dst = binary.AppendUvarint(dst, uint64(len(s.peerAS)))
	prev := uint32(0)
	for i, as := range s.peerAS {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(as))
		} else {
			dst = binary.AppendUvarint(dst, uint64(as-prev))
		}
		prev = as
	}
	dst = wire.AppendAddr(dst, s.minAddr)
	dst = wire.AppendAddr(dst, s.maxAddr)
	dst = binary.AppendUvarint(dst, uint64(len(s.filter)))
	return append(dst, s.filter...)
}

func readSummary(r *wire.Reader) blockSummary {
	var s blockSummary
	s.count = int(r.Uvarint())
	s.tmin = r.Varint()
	span := r.Uvarint()
	if span > math.MaxInt64 {
		r.Fail("evstore: bad time span")
		return s
	}
	s.tmax = s.tmin + int64(span)
	nas := r.Count(1)
	s.peerAS = make([]uint32, 0, nas)
	prev := uint64(0)
	for i := 0; i < nas; i++ {
		d := r.Uvarint()
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		if prev > math.MaxUint32 {
			r.Fail("evstore: peer AS overflow")
			return s
		}
		s.peerAS = append(s.peerAS, uint32(prev))
	}
	s.minAddr = r.Addr()
	s.maxAddr = r.Addr()
	s.filter = r.Bytes(r.Count(1))
	return s
}

// ---------------------------------------------------------------------------
// Columnar block codec
// ---------------------------------------------------------------------------

// dict accumulates a per-block dictionary keyed by the encoded form.
type dict struct {
	index map[string]uint32
	keys  []string
}

func (d *dict) id(key string) uint32 {
	if d.index == nil {
		d.index = make(map[string]uint32)
	}
	if id, ok := d.index[key]; ok {
		return id
	}
	id := uint32(len(d.keys))
	d.index[key] = id
	d.keys = append(d.keys, key)
	return id
}

// pathKey serializes an AS path for dictionary keying and storage.
func pathKey(p bgp.ASPath) string {
	return string(wire.AppendPath(make([]byte, 0, 8+8*len(p)), p))
}

// commsKey serializes a community set for the dictionary.
func commsKey(cs bgp.Communities) string {
	return string(wire.AppendComms(make([]byte, 0, 2+5*len(cs)), cs))
}

// prefixKeyEnc serializes a prefix for the dictionary.
func prefixKeyEnc(p netip.Prefix) string {
	return string(wire.AppendPrefix(make([]byte, 0, 19), p))
}

// addrKey serializes a peer address for the dictionary.
func addrKey(a netip.Addr) string { return string(wire.AppendAddr(nil, a)) }

// bitset packs one bit per event.
type bitset []byte

func newBitset(n int) bitset { return make(bitset, (n+7)/8) }

func (b bitset) set(i int)      { b[i/8] |= 1 << (i % 8) }
func (b bitset) get(i int) bool { return b[i/8]&(1<<(i%8)) != 0 }

// encodeBlock renders events into the columnar payload (uncompressed)
// and the block's pushdown summary. Layout, in order: event count;
// zigzag-delta timestamps; then per column a dictionary followed by one
// uvarint index per event (collector, peer AS, peer address, prefix,
// AS path, communities); withdraw and has-MED bitsets; and a uvarint
// MED per has-MED event.
func encodeBlock(events []classify.Event, dst []byte) ([]byte, blockSummary) {
	n := len(events)
	sum := blockSummary{count: n, tmin: math.MaxInt64, tmax: math.MinInt64}
	var filter prefixFilter

	dst = binary.AppendUvarint(dst, uint64(n))

	// Times: zigzag deltas from the previous event.
	prev := int64(0)
	for _, e := range events {
		t := e.Time.UnixNano()
		dst = wire.AppendVarint(dst, t-prev)
		prev = t
		if t < sum.tmin {
			sum.tmin = t
		}
		if t > sum.tmax {
			sum.tmax = t
		}
	}
	if n == 0 {
		sum.tmin, sum.tmax = 0, 0
	}

	// Dictionary columns.
	var collectors, peerAS, peerAddrs, prefixes, paths, comms dict
	ids := make([]uint32, n)

	writeDict := func(d *dict) {
		dst = binary.AppendUvarint(dst, uint64(len(d.keys)))
		for _, key := range d.keys {
			dst = append(dst, key...)
		}
		for _, id := range ids {
			dst = binary.AppendUvarint(dst, uint64(id))
		}
	}
	writeStringDict := func(d *dict) {
		dst = binary.AppendUvarint(dst, uint64(len(d.keys)))
		for _, key := range d.keys {
			dst = binary.AppendUvarint(dst, uint64(len(key)))
			dst = append(dst, key...)
		}
		for _, id := range ids {
			dst = binary.AppendUvarint(dst, uint64(id))
		}
	}

	for i, e := range events {
		ids[i] = collectors.id(e.Collector)
	}
	writeStringDict(&collectors)

	for i, e := range events {
		var buf [5]byte
		k := binary.PutUvarint(buf[:], uint64(e.PeerAS))
		ids[i] = peerAS.id(string(buf[:k]))
	}
	writeDict(&peerAS)
	for _, key := range peerAS.keys {
		as, _ := binary.Uvarint([]byte(key))
		sum.peerAS = append(sum.peerAS, uint32(as))
	}
	sort.Slice(sum.peerAS, func(i, j int) bool { return sum.peerAS[i] < sum.peerAS[j] })

	for i, e := range events {
		ids[i] = peerAddrs.id(addrKey(e.PeerAddr))
	}
	writeDict(&peerAddrs)

	for i, e := range events {
		ids[i] = prefixes.id(prefixKeyEnc(e.Prefix))
		if e.Prefix.IsValid() {
			a := e.Prefix.Addr()
			if !sum.minAddr.IsValid() || a.Compare(sum.minAddr) < 0 {
				sum.minAddr = a
			}
			if !sum.maxAddr.IsValid() || a.Compare(sum.maxAddr) > 0 {
				sum.maxAddr = a
			}
			filter.add(e.Prefix)
		}
	}
	writeDict(&prefixes)

	for i, e := range events {
		ids[i] = paths.id(pathKey(e.ASPath))
	}
	writeDict(&paths)

	for i, e := range events {
		ids[i] = comms.id(commsKey(e.Communities))
	}
	writeDict(&comms)

	// Flag bitsets and MED values.
	withdraw, hasMED := newBitset(n), newBitset(n)
	for i, e := range events {
		if e.Withdraw {
			withdraw.set(i)
		}
		if e.HasMED {
			hasMED.set(i)
		}
	}
	dst = append(dst, withdraw...)
	dst = append(dst, hasMED...)
	for _, e := range events {
		if e.HasMED {
			dst = binary.AppendUvarint(dst, uint64(e.MED))
		}
	}

	sum.filter = filter.bits()
	return dst, sum
}

// decodeBlock parses a columnar payload back into events. Dictionary
// entries are decoded once and shared by the events referencing them;
// consumers must treat event slice fields as immutable (the pipeline
// already does).
func decodeBlock(payload []byte) ([]classify.Event, error) {
	r := wire.NewReader(payload)
	rawN := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rawN > maxBlockEvents || rawN > uint64(r.Remaining()) {
		return nil, fmt.Errorf("evstore: implausible block event count %d", rawN)
	}
	n := int(rawN)
	events := make([]classify.Event, n)

	prev := int64(0)
	for i := range events {
		prev += r.Varint()
		events[i].Time = time.Unix(0, prev).UTC()
	}

	readIDs := func(dictLen int) []uint32 {
		if r.Err() != nil {
			return nil
		}
		out := make([]uint32, n)
		for i := range out {
			id := r.Uvarint()
			if id >= uint64(dictLen) {
				r.Fail("evstore: dictionary index %d out of range (dict size %d)", id, dictLen)
				return nil
			}
			out[i] = uint32(id)
		}
		return out
	}

	// Collectors.
	nc := r.Count(1)
	collectors := make([]string, nc)
	for i := range collectors {
		collectors[i] = r.String()
	}
	for i, id := range readIDs(nc) {
		events[i].Collector = collectors[id]
	}

	// Peer ASNs.
	na := r.Count(1)
	peerAS := make([]uint32, na)
	for i := range peerAS {
		peerAS[i] = r.Uint32()
	}
	for i, id := range readIDs(na) {
		events[i].PeerAS = peerAS[id]
	}

	// Peer addresses.
	nr := r.Count(1)
	peerAddrs := make([]netip.Addr, nr)
	for i := range peerAddrs {
		peerAddrs[i] = r.Addr()
	}
	for i, id := range readIDs(nr) {
		events[i].PeerAddr = peerAddrs[id]
	}

	// Prefixes.
	np := r.Count(1)
	prefixes := make([]netip.Prefix, np)
	for i := range prefixes {
		prefixes[i] = r.Prefix()
	}
	for i, id := range readIDs(np) {
		events[i].Prefix = prefixes[id]
	}

	// AS paths.
	npth := r.Count(1)
	paths := make([]bgp.ASPath, npth)
	for i := range paths {
		paths[i] = r.Path()
	}
	for i, id := range readIDs(npth) {
		events[i].ASPath = paths[id]
	}

	// Communities.
	ncs := r.Count(1)
	comms := make([]bgp.Communities, ncs)
	for i := range comms {
		comms[i] = r.Comms()
	}
	for i, id := range readIDs(ncs) {
		events[i].Communities = comms[id]
	}

	// Flags and MED.
	withdraw := bitset(r.Bytes((n + 7) / 8))
	hasMED := bitset(r.Bytes((n + 7) / 8))
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := range events {
		events[i].Withdraw = withdraw.get(i)
		if hasMED.get(i) {
			events[i].HasMED = true
			med := r.Uvarint()
			if med > math.MaxUint32 {
				r.Fail("evstore: MED overflow")
			}
			events[i].MED = uint32(med)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
