package evstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/classify"
	"repro/internal/stream"
	"repro/internal/wire"
)

// WriterStats summarizes one writer's lifetime for reporting.
type WriterStats struct {
	Events     int // events ingested
	Blocks     int // blocks written
	Partitions int // partition files created
	// Sealed is the number of partition files sealed (published) so far.
	Sealed int
	// PolicySealed counts the seals triggered by the SealPolicy rather
	// than the two-day window or Close — the live publishes.
	PolicySealed int
	// PeakActive is the maximum number of simultaneously open
	// partitions — the writer's memory footprint is PeakActive pending
	// blocks, independent of how many days are ingested.
	PeakActive int
	// Bytes is the total compressed bytes written to sealed partitions.
	Bytes int64
}

// Add accumulates another writer's stats — aggregation across the
// per-collector writers of a live plane. PeakActive sums: the writers
// are concurrently open, so their footprints coexist.
func (s *WriterStats) Add(o WriterStats) {
	s.Events += o.Events
	s.Blocks += o.Blocks
	s.Partitions += o.Partitions
	s.Sealed += o.Sealed
	s.PolicySealed += o.PolicySealed
	s.PeakActive += o.PeakActive
	s.Bytes += o.Bytes
}

// SealPolicy triggers partition seals ahead of the two-day window so a
// live ingest publishes within seconds instead of at day boundaries.
// Zero fields disable their threshold; the zero policy disables early
// sealing entirely (batch behavior). A policy-triggered seal is a
// durable publish: it leaves the Abort rollback set, so for a live
// writer the rollback boundary is the seal, not the process.
type SealPolicy struct {
	// MaxAge seals a partition this long (wall clock) after it was
	// opened, even if events are still arriving — the freshness bound.
	// Age-based seals happen on Append and on explicit SealExpired
	// calls; a quiet collector needs the latter (a ticker) to publish
	// its tail.
	MaxAge time.Duration
	// MaxEvents seals a partition once it holds this many events.
	MaxEvents int
	// MaxBytes seals a partition once its compressed size reaches this
	// many bytes (checked at block granularity).
	MaxBytes int64
}

func (p SealPolicy) enabled() bool {
	return p.MaxAge > 0 || p.MaxEvents > 0 || p.MaxBytes > 0
}

// Writer appends event streams to a store directory. It routes each
// event to the partition for its (collector, UTC day), sealing a
// collector's partitions once they fall more than two days behind that
// collector's newest event (an open window of about three days per
// collector), so the open set — and with it memory — stays bounded
// during multi-day ingests. Not safe for concurrent use.
type Writer struct {
	// BlockEvents is the number of events per block; set before the
	// first Ingest (default DefaultBlockEvents).
	BlockEvents int

	// Codec selects the block payload codec for partitions this writer
	// seals (Open defaults it to DefaultCodec; set before the first
	// Append/Ingest). A block whose compressed form would not shrink is
	// stored raw regardless — readers dispatch per block, so mixing is
	// free. Existing partitions keep whatever codec they were written
	// with; use Recode to migrate them.
	Codec Codec

	// Seal is the live-append seal policy (zero: batch behavior, seal
	// only on the two-day window and Close). Set before the first
	// Append/Ingest.
	Seal SealPolicy

	// Now supplies the wall clock for SealPolicy.MaxAge (tests override
	// it; nil defaults to time.Now).
	Now func() time.Time

	// OnSeal, if set, observes every partition this writer publishes —
	// the hook the ingest plane's freshness and seal-lag metrics hang
	// off. Called synchronously after the partition file is linked into
	// place (it is already durable and scannable); keep it cheap.
	OnSeal func(SealInfo)

	dir     string
	active  map[partKey]*partWriter
	nextSeq map[partKey]int
	// maxDay tracks each collector's newest event day. Sealing is
	// per-collector because concatenated inputs (one archive per
	// collector) restart the clock at each collector boundary.
	maxDay map[string]int64
	// sealed lists the partition files this writer renamed into place,
	// so Abort can roll back a failed ingest completely.
	sealed []string
	stats  WriterStats

	// Shared encode scratch: flushes are sequential, so one payload
	// buffer and one compressor serve every partition.
	payload []byte
	comp    blockCompressor

	// legacyV1 writes the pre-codec v1 format (EVP1/EVF1, every block
	// deflate, no codec ids) — kept so compatibility tests can create
	// the stores old releases wrote.
	legacyV1 bool
}

type partKey struct {
	collector string
	day       int64 // unix seconds of the UTC day start
}

// Open creates (or opens for append) a store directory. Existing
// partitions are never modified; new ingests allocate fresh sequence
// numbers per (collector, day).
func Open(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{
		BlockEvents: DefaultBlockEvents,
		Codec:       DefaultCodec,
		dir:         dir,
		active:      make(map[partKey]*partWriter),
		nextSeq:     make(map[partKey]int),
		maxDay:      make(map[string]int64),
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*"+Extension))
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		collector, day, seq, ok := parsePartitionName(filepath.Base(p))
		if !ok {
			continue
		}
		key := partKey{sanitizeCollector(collector), day.Unix()}
		if seq >= w.nextSeq[key] {
			w.nextSeq[key] = seq + 1
		}
	}
	return w, nil
}

// Stats returns the writer's cumulative statistics.
func (w *Writer) Stats() WriterStats { return w.stats }

func (w *Writer) now() time.Time {
	if w.Now != nil {
		return w.Now()
	}
	return time.Now()
}

// Ingest drains a source into the store. It may be called repeatedly;
// each event lands in its (collector, day) partition in arrival order,
// so per-session event order is preserved as long as the source itself
// preserves it (all pipeline sources do).
func (w *Writer) Ingest(src stream.EventSource) error {
	var err error
	for e := range src {
		if err = w.add(e); err != nil {
			break
		}
	}
	return err
}

// Append adds a single event — the live-ingest entry point (feeds hand
// events one at a time, not as a drainable source). It applies the
// same routing, two-day window, and seal policy as Ingest.
func (w *Writer) Append(e classify.Event) error { return w.add(e) }

func (w *Writer) add(e classify.Event) error {
	if len(e.Collector) > 255 {
		return fmt.Errorf("evstore: collector name %q too long", e.Collector)
	}
	day := dayStart(e.Time)
	key := partKey{e.Collector, day.Unix()}
	if maxDay, seen := w.maxDay[e.Collector]; !seen || key.day > maxDay {
		w.maxDay[e.Collector] = key.day
		// Seal this collector's partitions more than two days behind.
		// Producers emit at most the previous day's warm-up plus a few
		// minutes of next-day spillover alongside a day, so a two-day
		// window keeps every still-growing partition open while
		// bounding the open set to a few days × collectors,
		// independent of day count. A straggler past the window simply
		// opens a new sequence file — appends stay correct, just less
		// compact.
		for k, pw := range w.active {
			if k.collector == e.Collector && k.day < key.day-2*24*60*60 {
				if err := w.seal(k, pw, true); err != nil {
					return err
				}
			}
		}
	}
	pw := w.active[key]
	if pw == nil {
		var err error
		pw, err = w.openPartition(e.Collector, day, key)
		if err != nil {
			return err
		}
		w.active[key] = pw
		w.stats.Partitions++
		if len(w.active) > w.stats.PeakActive {
			w.stats.PeakActive = len(w.active)
		}
	}
	pw.pending = append(pw.pending, e)
	pw.events++
	if pw.minEvent.IsZero() || e.Time.Before(pw.minEvent) {
		pw.minEvent = e.Time
	}
	if e.Time.After(pw.maxEvent) {
		pw.maxEvent = e.Time
	}
	w.stats.Events++
	if len(pw.pending) >= w.blockEvents() {
		if err := w.flushBlock(pw); err != nil {
			return err
		}
	}
	return w.maybeSealPolicy(key, pw)
}

// maybeSealPolicy seals pw if the live seal policy's thresholds are
// met. Policy seals are durable publishes: they leave the rollback
// set, so a later Abort cannot take back what a watcher may already be
// serving.
func (w *Writer) maybeSealPolicy(key partKey, pw *partWriter) error {
	p := w.Seal
	if !p.enabled() {
		return nil
	}
	switch {
	case p.MaxEvents > 0 && pw.events >= p.MaxEvents:
	case p.MaxBytes > 0 && pw.off >= p.MaxBytes:
	case p.MaxAge > 0 && w.now().Sub(pw.openedAt) >= p.MaxAge:
	default:
		return nil
	}
	return w.seal(key, pw, false)
}

// SealExpired seals every open partition older than Seal.MaxAge — the
// ticker-driven path that publishes a quiet collector's tail (Append
// applies the policy only when an event arrives, so without this a
// partition whose feed went silent would sit unsealed until Close).
// It reports how many partitions were sealed; a no-op unless MaxAge is
// set.
func (w *Writer) SealExpired() (int, error) {
	if w.Seal.MaxAge <= 0 {
		return 0, nil
	}
	now := w.now()
	var expired []partKey
	for k, pw := range w.active {
		if now.Sub(pw.openedAt) >= w.Seal.MaxAge {
			expired = append(expired, k)
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		if expired[i].collector != expired[j].collector {
			return expired[i].collector < expired[j].collector
		}
		return expired[i].day < expired[j].day
	})
	for _, k := range expired {
		if err := w.seal(k, w.active[k], false); err != nil {
			return 0, err
		}
	}
	return len(expired), nil
}

func (w *Writer) blockEvents() int {
	if w.BlockEvents <= 0 {
		return DefaultBlockEvents
	}
	// Clamp to what the decoder accepts: a larger block would be
	// written successfully but refuse to scan.
	if w.BlockEvents > maxBlockEvents {
		return maxBlockEvents
	}
	return w.BlockEvents
}

// Close seals every open partition. The writer is unusable afterwards.
func (w *Writer) Close() error {
	keys := make([]partKey, 0, len(w.active))
	for k := range w.active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].collector != keys[j].collector {
			return keys[i].collector < keys[j].collector
		}
		return keys[i].day < keys[j].day
	})
	var firstErr error
	for _, k := range keys {
		if err := w.seal(k, w.active[k], true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Partition files
// ---------------------------------------------------------------------------

type blockMeta struct {
	offset     int64 // file offset of the stored payload
	ulen, clen int
	codec      Codec // how the stored bytes are compressed
	sum        blockSummary
}

type partWriter struct {
	collector string
	day       time.Time
	seq       int
	tmpPath   string
	f         *os.File
	bw        *bufio.Writer
	off       int64
	pending   []classify.Event
	blocks    []blockMeta
	openedAt  time.Time // wall clock, for SealPolicy.MaxAge
	events    int       // events appended, for SealPolicy.MaxEvents
	// minEvent/maxEvent bound the partition's event times (zero until
	// the first append) — OnSeal reports them so freshness metrics can
	// measure event→sealed latency without a second bookkeeping path.
	minEvent, maxEvent time.Time
}

// SealInfo describes one published partition, handed to Writer.OnSeal.
type SealInfo struct {
	// Collector and Day identify the partition; Path is the published
	// file name within the store directory.
	Collector string
	Day       time.Time
	Path      string
	// Events and Bytes are the partition's row count and on-disk size.
	Events int
	Bytes  int64
	// MinEvent/MaxEvent bound the partition's event times.
	MinEvent, MaxEvent time.Time
	// OpenFor is how long the partition was open (seal lag: the time
	// the oldest appended event waited to become durable).
	OpenFor time.Duration
	// Policy reports a live SealPolicy seal (as opposed to the batch
	// two-day-window or Close path).
	Policy bool
}

// sanitizeCollector maps a collector name onto the filename-safe
// alphabet used in partition names. The header keeps the exact name;
// the filename is only a pushdown hint.
func sanitizeCollector(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

// partitionName renders "<collector>__<YYYYMMDD>__<seq>.evp".
func partitionName(collector string, day time.Time, seq int) string {
	return fmt.Sprintf("%s__%s__%04d%s",
		sanitizeCollector(collector), day.UTC().Format("20060102"), seq, Extension)
}

// parsePartitionName inverts partitionName; ok is false for foreign
// file names (callers then fall back to reading the header).
func parsePartitionName(base string) (collector string, day time.Time, seq int, ok bool) {
	name, found := strings.CutSuffix(base, Extension)
	if !found {
		return "", time.Time{}, 0, false
	}
	i := strings.LastIndex(name, "__")
	if i < 0 {
		return "", time.Time{}, 0, false
	}
	if _, err := fmt.Sscanf(name[i+2:], "%d", &seq); err != nil {
		return "", time.Time{}, 0, false
	}
	name = name[:i]
	i = strings.LastIndex(name, "__")
	if i < 0 {
		return "", time.Time{}, 0, false
	}
	day, err := time.ParseInLocation("20060102", name[i+2:], time.UTC)
	if err != nil {
		return "", time.Time{}, 0, false
	}
	return name[:i], day, seq, true
}

func (w *Writer) openPartition(collector string, day time.Time, key partKey) (*partWriter, error) {
	seqKey := partKey{sanitizeCollector(collector), key.day}
	seq := w.nextSeq[seqKey]
	w.nextSeq[seqKey] = seq + 1
	// The block data goes to a private temp file; the final
	// "<collector>__<day>__<seq>.evp" name is claimed exclusively at
	// seal time, so the seq chosen here is only a starting guess and
	// concurrent writers can never shadow each other's partitions.
	f, err := os.CreateTemp(w.dir, "ingest-*.evp-tmp")
	if err != nil {
		return nil, err
	}
	pw := &partWriter{collector: collector, day: day, seq: seq, tmpPath: f.Name(), f: f,
		bw: bufio.NewWriter(f), openedAt: w.now()}
	magic := partitionMagicV2
	if w.legacyV1 {
		magic = partitionMagicV1
	}
	header := append([]byte(magic), byte(len(collector)))
	header = append(header, collector...)
	header = wire.AppendVarint(header, day.Unix())
	if _, err := pw.bw.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	pw.off = int64(len(header))
	return pw, nil
}

// flushBlock encodes, compresses, and appends the pending events as one
// block, recording its footer metadata.
func (w *Writer) flushBlock(pw *partWriter) error {
	if len(pw.pending) == 0 {
		return nil
	}
	w.payload = w.payload[:0]
	var sum blockSummary
	w.payload, sum = encodeBlock(pw.pending, w.payload)
	pw.pending = pw.pending[:0]

	var data []byte
	var codec Codec
	if w.legacyV1 {
		// The v1 frame has no codec id: deflate unconditionally.
		if err := w.comp.deflate(w.payload); err != nil {
			return err
		}
		data, codec = w.comp.fbuf.Bytes(), CodecDeflate
	} else {
		if !w.Codec.valid() {
			return fmt.Errorf("evstore: invalid writer codec %d", w.Codec)
		}
		var err error
		data, codec, err = w.comp.compress(w.Codec, w.payload)
		if err != nil {
			return err
		}
	}

	var frame [2*binary.MaxVarintLen64 + 1]byte
	k := binary.PutUvarint(frame[:], uint64(len(w.payload)))
	k += binary.PutUvarint(frame[k:], uint64(len(data)))
	if !w.legacyV1 {
		frame[k] = byte(codec)
		k++
	}
	if _, err := pw.bw.Write(frame[:k]); err != nil {
		return err
	}
	meta := blockMeta{offset: pw.off + int64(k), ulen: len(w.payload), clen: len(data), codec: codec, sum: sum}
	if _, err := pw.bw.Write(data); err != nil {
		return err
	}
	pw.off = meta.offset + int64(meta.clen)
	pw.blocks = append(pw.blocks, meta)
	w.stats.Blocks++
	return nil
}

// seal flushes the final block, writes the footer index, and links the
// partition into place under an exclusively claimed name. rollback
// records the sealed file in the Abort rollback set (batch semantics);
// policy-driven seals pass false, making the seal a durable publish.
func (w *Writer) seal(key partKey, pw *partWriter, rollback bool) error {
	delete(w.active, key)
	if err := w.flushBlock(pw); err != nil {
		pw.f.Close()
		os.Remove(pw.tmpPath)
		return err
	}
	footerMagic := footerMagicV2
	if w.legacyV1 {
		footerMagic = footerMagicV1
	}
	footer := []byte(footerMagic)
	footer = binary.AppendUvarint(footer, uint64(len(pw.blocks)))
	for _, b := range pw.blocks {
		footer = binary.AppendUvarint(footer, uint64(b.offset))
		footer = binary.AppendUvarint(footer, uint64(b.ulen))
		footer = binary.AppendUvarint(footer, uint64(b.clen))
		if !w.legacyV1 {
			footer = append(footer, byte(b.codec))
		}
		footer = b.sum.append(footer)
	}
	if _, err := pw.bw.Write(footer); err != nil {
		pw.f.Close()
		os.Remove(pw.tmpPath)
		return err
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[:4], uint32(len(footer)))
	copy(trailer[4:], footerMagic)
	if _, err := pw.bw.Write(trailer[:]); err != nil {
		pw.f.Close()
		os.Remove(pw.tmpPath)
		return err
	}
	if err := pw.bw.Flush(); err != nil {
		pw.f.Close()
		os.Remove(pw.tmpPath)
		return err
	}
	if err := pw.f.Close(); err != nil {
		os.Remove(pw.tmpPath)
		return err
	}
	w.stats.Bytes += pw.off + int64(len(footer)) + 8
	path, err := w.commit(pw)
	if err != nil {
		os.Remove(pw.tmpPath)
		return err
	}
	w.stats.Sealed++
	if rollback {
		w.sealed = append(w.sealed, path)
	} else {
		w.stats.PolicySealed++
	}
	if w.OnSeal != nil {
		w.OnSeal(SealInfo{
			Collector: pw.collector,
			Day:       dayStart(pw.day),
			Path:      filepath.Base(path),
			Events:    pw.events,
			Bytes:     pw.off + int64(len(footer)) + 8,
			MinEvent:  pw.minEvent,
			MaxEvent:  pw.maxEvent,
			OpenFor:   w.now().Sub(pw.openedAt),
			Policy:    !rollback,
		})
	}
	return nil
}

// commit publishes a fully written temp file under the next free
// "<collector>__<day>__<seq>.evp" name. os.Link refuses to replace an
// existing target, so a name that appeared since Open — another
// writer's partition, or one sealed by this writer earlier — bumps the
// sequence number instead of being shadowed; live appends into a
// non-empty store therefore always CONTINUE the partition sequence,
// never collide with it. The link also makes the partition appear
// atomically: concurrent scans see either no file or a complete one.
func (w *Writer) commit(pw *partWriter) (string, error) {
	seqKey := partKey{sanitizeCollector(pw.collector), dayStart(pw.day).Unix()}
	for {
		path := filepath.Join(w.dir, partitionName(pw.collector, pw.day, pw.seq))
		err := os.Link(pw.tmpPath, path)
		if err == nil {
			os.Remove(pw.tmpPath)
			if pw.seq+1 > w.nextSeq[seqKey] {
				w.nextSeq[seqKey] = pw.seq + 1
			}
			return path, nil
		}
		if os.IsExist(err) {
			pw.seq++
			continue
		}
		// Filesystems without hard links: fall back to a stat-guarded
		// rename. The guard closes most of the window; true atomicity
		// needs link support.
		if _, statErr := os.Lstat(path); statErr == nil {
			pw.seq++
			continue
		}
		if renameErr := os.Rename(pw.tmpPath, path); renameErr != nil {
			return "", renameErr
		}
		if pw.seq+1 > w.nextSeq[seqKey] {
			w.nextSeq[seqKey] = pw.seq + 1
		}
		return path, nil
	}
}

// Abort discards everything this writer wrote — open partitions and
// already-sealed ones alike — leaving the store as it was before the
// writer was opened. Use it instead of Close when an ingest fails
// part-way: sealing the partial output would create a valid-looking
// but incomplete store that later scans would silently trust.
//
// Partitions sealed by the SealPolicy are the exception: those are
// durable publishes (a watcher may already have snapshotted and served
// them), so for a live writer the rollback boundary is the seal, not
// the process — Abort removes only unsealed temp files and
// window/Close-sealed batch output.
func (w *Writer) Abort() {
	for k, pw := range w.active {
		delete(w.active, k)
		pw.f.Close()
		os.Remove(pw.tmpPath)
	}
	for _, path := range w.sealed {
		os.Remove(path)
	}
	w.sealed = nil
}

// Ingest is the one-shot convenience: open, drain src, close. A failed
// ingest is rolled back (Abort), leaving the store unchanged. errCheck
// hooks let deferred error reporters (the *errp of archive-backed
// sources) veto the commit after the stream is drained.
func Ingest(dir string, src stream.EventSource, errCheck ...func() error) (WriterStats, error) {
	w, err := Open(dir)
	if err != nil {
		return WriterStats{}, err
	}
	if err := w.Ingest(src); err != nil {
		w.Abort()
		return w.Stats(), err
	}
	for _, check := range errCheck {
		if err := check(); err != nil {
			w.Abort()
			return w.Stats(), err
		}
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return w.Stats(), err
	}
	return w.Stats(), nil
}
