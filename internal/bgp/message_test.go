package bgp

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
)

func TestKeepaliveRoundTrip(t *testing.T) {
	wire, err := Marshal(&Keepalive{}, opt4)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != HeaderLen {
		t.Errorf("KEEPALIVE length = %d, want %d", len(wire), HeaderLen)
	}
	m, err := Unmarshal(wire, opt4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Keepalive); !ok {
		t.Errorf("got %T", m)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: NotifCease, Subcode: 2, Data: []byte{0xAA}}
	wire, err := Marshal(n, opt4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(wire, opt4)
	if err != nil {
		t.Fatal(err)
	}
	back := m.(*Notification)
	if back.Code != NotifCease || back.Subcode != 2 || !bytes.Equal(back.Data, []byte{0xAA}) {
		t.Errorf("got %+v", back)
	}
	if back.Error() == "" {
		t.Error("empty Error()")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := NewOpen(4200000001, netip.MustParseAddr("10.255.0.1"), 90)
	wire, err := Marshal(o, opt4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(wire, opt4)
	if err != nil {
		t.Fatal(err)
	}
	back := m.(*Open)
	if back.ASN != 4200000001 {
		t.Errorf("ASN = %d (4-byte cap should restore the full ASN)", back.ASN)
	}
	if back.RouterID != o.RouterID || back.HoldTime != 90 || back.Version != 4 {
		t.Errorf("got %+v", back)
	}
	if !back.SupportsFourByteAS() {
		t.Error("4-byte AS capability lost")
	}
	// Multiprotocol caps for v4 and v6 present.
	var mpCount int
	for _, c := range back.Capabilities {
		if c.Code == CapMultiprotocol {
			mpCount++
		}
	}
	if mpCount != 2 {
		t.Errorf("multiprotocol capabilities = %d, want 2", mpCount)
	}
}

func TestOpenSmallASN(t *testing.T) {
	o := NewOpen(65001, netip.MustParseAddr("192.0.2.1"), 180)
	wire, err := Marshal(o, opt4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(wire, opt4)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*Open).ASN != 65001 {
		t.Errorf("ASN = %d", back.(*Open).ASN)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, _ := Marshal(&Keepalive{}, opt4)

	short := good[:10]
	if _, err := Unmarshal(short, opt4); err == nil {
		t.Error("short message accepted")
	}

	badMarker := append([]byte(nil), good...)
	badMarker[3] = 0
	if _, err := Unmarshal(badMarker, opt4); err == nil {
		t.Error("bad marker accepted")
	}

	badLen := append([]byte(nil), good...)
	badLen[16], badLen[17] = 0xFF, 0xFF
	if _, err := Unmarshal(badLen, opt4); err == nil {
		t.Error("oversized length accepted")
	}

	badType := append([]byte(nil), good...)
	badType[18] = 77
	if _, err := Unmarshal(badType, opt4); err == nil {
		t.Error("unknown type accepted")
	}

	kaWithBody := append([]byte(nil), good...)
	kaWithBody = append(kaWithBody, 0xAB)
	kaWithBody[17] = byte(len(kaWithBody))
	if _, err := Unmarshal(kaWithBody, opt4); err == nil {
		t.Error("KEEPALIVE with body accepted")
	}
}

func TestReadMessageStream(t *testing.T) {
	u := &Update{
		NLRI: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
		Attrs: PathAttrs{
			Origin:  OriginIGP,
			ASPath:  NewASPath(65000, 65001),
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
	}
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		wire, err := Marshal(u, opt4)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(wire)
	}
	kw, _ := Marshal(&Keepalive{}, opt4)
	stream.Write(kw)

	var updates, keepalives int
	for {
		m, err := ReadMessage(&stream, opt4)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch m.(type) {
		case *Update:
			updates++
		case *Keepalive:
			keepalives++
		}
	}
	if updates != 3 || keepalives != 1 {
		t.Errorf("read %d updates, %d keepalives", updates, keepalives)
	}
}

func TestReadMessageTruncatedStream(t *testing.T) {
	wire, _ := Marshal(&Keepalive{}, opt4)
	r := bytes.NewReader(wire[:HeaderLen-5])
	if _, err := ReadMessage(r, opt4); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTypeName(t *testing.T) {
	for typ, want := range map[uint8]string{
		TypeOpen: "OPEN", TypeUpdate: "UPDATE",
		TypeNotification: "NOTIFICATION", TypeKeepalive: "KEEPALIVE", 99: "type(99)",
	} {
		if got := TypeName(typ); got != want {
			t.Errorf("TypeName(%d) = %q, want %q", typ, got, want)
		}
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "IGP" || OriginEGP.String() != "EGP" || OriginIncomplete.String() != "incomplete" {
		t.Error("origin strings wrong")
	}
	if Origin(9).String() != "origin(9)" {
		t.Error("unknown origin string wrong")
	}
}
