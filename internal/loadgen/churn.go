package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/classify"
)

// ChurnFeed is an ingest.Feed producing a steady stream of synthetic
// announcements stamped with the wall clock — the live-ingest side of
// a load test. Run one on an ingest.Plane over the served store while
// the query load runs: every seal invalidates the daemon's answer
// cache, so the test exercises serve-under-churn (cache rebuilds,
// refresh races, generation drift) rather than a frozen store.
type ChurnFeed struct {
	// FeedName names the feed for the supervisor (default "churn").
	FeedName string
	// Collector stamps the events (default "churn00"); keep it distinct
	// from the query mix's collectors so churn grows the store without
	// rewriting the windows under measurement.
	Collector string
	// EventsPerSec paces emission (default 500).
	EventsPerSec float64
	// Seed varies the synthetic routes (0: 1).
	Seed int64
	// Now is injectable for tests (nil: time.Now).
	Now func() time.Time
}

// Name implements ingest.Feed.
func (f *ChurnFeed) Name() string {
	if f.FeedName != "" {
		return f.FeedName
	}
	return "churn"
}

// Run emits until ctx is cancelled.
func (f *ChurnFeed) Run(ctx context.Context, emit func(classify.Event) error) error {
	collector := f.Collector
	if collector == "" {
		collector = "churn00"
	}
	rate := f.EventsPerSec
	if rate <= 0 {
		rate = 500
	}
	now := f.Now
	if now == nil {
		now = time.Now
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	peers := make([]netip.Addr, 4)
	for i := range peers {
		peers[i] = netip.MustParseAddr(fmt.Sprintf("10.9.%d.1", i))
	}
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	for seq := 0; ; seq++ {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		i := rng.Intn(len(peers))
		e := classify.Event{
			Time:      now(),
			Collector: collector,
			PeerAS:    uint32(65000 + i),
			PeerAddr:  peers[i],
			Prefix:    netip.PrefixFrom(netip.AddrFrom4([4]byte{192, 0, byte(seq % 256), 0}), 24),
			ASPath:    bgp.NewASPath(uint32(65000+i), 3356, uint32(1000+seq%50)),
		}
		// Most announcements carry communities (the paper's subject);
		// some withdraw.
		switch seq % 10 {
		case 9:
			e.Withdraw = true
			e.ASPath, e.Communities = nil, nil
		default:
			e.Communities = bgp.Communities{bgp.NewCommunity(3356, uint16(seq%100))}
		}
		if err := emit(e); err != nil {
			return err
		}
	}
}
