package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// maxRecordLen bounds record bodies to guard against corrupt length fields.
const maxRecordLen = 1 << 20

// Writer serializes MRT records to a stream.
type Writer struct {
	w *bufio.Writer
	// ExtendedTime selects BGP4MP_ET framing for BGP4MP records, carrying
	// microsecond timestamps as RIS and RouteViews do.
	ExtendedTime bool
}

// NewWriter returns a Writer emitting plain BGP4MP records.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one record stamped with ts.
func (w *Writer) Write(ts time.Time, rec Record) error {
	typ, sub := rec.MRTType()
	body, err := rec.appendBody(nil)
	if err != nil {
		return err
	}
	ext := w.ExtendedTime && typ == TypeBGP4MP
	if ext {
		typ = TypeBGP4MPET
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], sub)
	bodyLen := len(body)
	if ext {
		bodyLen += 4
	}
	binary.BigEndian.PutUint32(hdr[8:12], uint32(bodyLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if ext {
		micros := uint32(ts.Nanosecond() / 1000)
		var mb [4]byte
		binary.BigEndian.PutUint32(mb[:], micros)
		if _, err := w.w.Write(mb[:]); err != nil {
			return err
		}
	}
	_, err = w.w.Write(body)
	return err
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses MRT records from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a streaming MRT reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ErrUnsupported marks record types this reader does not interpret; callers
// may skip them and continue.
var ErrUnsupported = errors.New("mrt: unsupported record type")

// Next reads the next record. It returns io.EOF at clean end of stream. For
// unknown record types it returns the header, a nil record, and an error
// wrapping ErrUnsupported; the stream remains positioned at the next record.
func (r *Reader) Next() (Header, Record, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, fmt.Errorf("mrt: short header: %w", err)
	}
	h := Header{
		Timestamp: time.Unix(int64(binary.BigEndian.Uint32(hdr[0:4])), 0).UTC(),
		Type:      binary.BigEndian.Uint16(hdr[4:6]),
		Subtype:   binary.BigEndian.Uint16(hdr[6:8]),
	}
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > maxRecordLen {
		return h, nil, fmt.Errorf("mrt: record length %d exceeds limit", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return h, nil, fmt.Errorf("mrt: short record body: %w", err)
	}
	if h.Type == TypeBGP4MPET {
		if len(body) < 4 {
			return h, nil, fmt.Errorf("mrt: ET record missing microsecond field")
		}
		h.Microsecond = binary.BigEndian.Uint32(body[0:4])
		if h.Microsecond > 999999 {
			return h, nil, fmt.Errorf("mrt: microsecond field %d out of range", h.Microsecond)
		}
		body = body[4:]
		h.Type = TypeBGP4MP
	}

	switch h.Type {
	case TypeBGP4MP:
		switch h.Subtype {
		case SubtypeMessage:
			rec, err := decodeBGP4MPMessage(body, false)
			return h, rec, err
		case SubtypeMessageAS4:
			rec, err := decodeBGP4MPMessage(body, true)
			return h, rec, err
		case SubtypeStateChange:
			rec, err := decodeBGP4MPStateChange(body, false)
			return h, rec, err
		case SubtypeStateChangeAS4:
			rec, err := decodeBGP4MPStateChange(body, true)
			return h, rec, err
		}
	case TypeTableDumpV2:
		switch h.Subtype {
		case SubtypePeerIndexTable:
			rec, err := decodePeerIndexTable(body)
			return h, rec, err
		case SubtypeRIBIPv4Unicast:
			rec, err := decodeRIBUnicast(body, 1)
			return h, rec, err
		case SubtypeRIBIPv6Unicast:
			rec, err := decodeRIBUnicast(body, 2)
			return h, rec, err
		}
	}
	return h, nil, fmt.Errorf("%w: type %d subtype %d", ErrUnsupported, h.Type, h.Subtype)
}

// Walk iterates all records, invoking fn for each supported record and
// skipping unsupported ones. It stops at end of stream or the first error
// from fn or the stream.
func (r *Reader) Walk(fn func(Header, Record) error) error {
	for {
		h, rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, ErrUnsupported) {
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(h, rec); err != nil {
			return err
		}
	}
}
