package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// values, HELP/TYPE headers once per family. Samplers registered with
// OnScrape run first, so gauges fed from existing stats structs are
// current.
func (r *Registry) WriteText(w io.Writer) error {
	fams, samplers := r.sortedFamilies()
	for _, fn := range samplers {
		fn()
	}
	var b strings.Builder
	for _, f := range fams {
		type row struct {
			key  string
			inst instrument
		}
		var rows []row
		f.series.Range(func(k, v any) bool {
			rows = append(rows, row{k.(string), v.(instrument)})
			return true
		})
		if len(rows) == 0 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, row := range rows {
			row.inst.sampleInto(&b, f.name, f.labelPart(row.key))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeHelp(h string) string {
	r := strings.NewReplacer("\\", `\\`, "\n", `\n`)
	return r.Replace(h)
}

// Handler serves GET /metrics scrapes of this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// ---------------------------------------------------------------------------
// Lint
// ---------------------------------------------------------------------------

// Lint validates a text exposition: well-formed lines, every series
// preceded by its family's HELP/TYPE headers, no duplicate series, and
// histogram invariants (cumulative monotone buckets, an +Inf bucket
// equal to _count). Tests and the load generator's scrape assertion
// share it. Returns nil when the exposition is valid.
func Lint(exposition []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(exposition)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	type hist struct {
		lastCum   uint64
		lastBound float64
		sawInf    bool
		infCount  uint64
		count     uint64
		sawCount  bool
	}
	typed := map[string]string{} // family -> type
	helped := map[string]bool{}
	seen := map[string]bool{} // full series key (name + labels)
	hists := map[string]*hist{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			if parts[0] == "" {
				return fmt.Errorf("line %d: HELP without metric name", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", line, text)
			}
			if _, dup := typed[parts[0]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", line, parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", line, parts[1])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // comment
		}

		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		fam := name
		if typed[fam] == "" {
			// Histogram series carry _bucket/_sum/_count suffixes on
			// the family name.
			if f := familyOf(name); typed[f] == "histogram" {
				fam = f
			}
		}
		if typed[fam] == "" {
			return fmt.Errorf("line %d: series %q before its TYPE header", line, name)
		}
		if !helped[fam] {
			return fmt.Errorf("line %d: series %q before its HELP header", line, name)
		}
		seriesKey := name + labels
		if seen[seriesKey] {
			return fmt.Errorf("line %d: duplicate series %s", line, seriesKey)
		}
		seen[seriesKey] = true

		if typed[fam] == "histogram" {
			hkey := fam + stripLE(labels)
			h := hists[hkey]
			if h == nil {
				h = &hist{}
				hists[hkey] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := leOf(labels)
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", line)
				}
				cum := uint64(value)
				if le == "+Inf" {
					h.sawInf = true
					h.infCount = cum
					if cum < h.lastCum {
						return fmt.Errorf("line %d: +Inf bucket %d below previous cumulative %d", line, cum, h.lastCum)
					}
					break
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %w", line, le, err)
				}
				if h.lastCum > 0 || h.lastBound != 0 {
					if bound <= h.lastBound && h.lastBound != 0 {
						return fmt.Errorf("line %d: bucket bounds not increasing (%v after %v)", line, bound, h.lastBound)
					}
					if cum < h.lastCum {
						return fmt.Errorf("line %d: cumulative bucket count decreased (%d after %d)", line, cum, h.lastCum)
					}
				}
				h.lastCum, h.lastBound = cum, bound
			case strings.HasSuffix(name, "_count"):
				h.count = uint64(value)
				h.sawCount = true
			case strings.HasSuffix(name, "_sum"):
			default:
				return fmt.Errorf("line %d: unexpected histogram series %q", line, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if !h.sawInf {
			return fmt.Errorf("histogram %s: no +Inf bucket", key)
		}
		if !h.sawCount {
			return fmt.Errorf("histogram %s: no _count series", key)
		}
		if h.infCount != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %d != count %d", key, h.infCount, h.count)
		}
	}
	return nil
}

// parseSample splits `name{labels} value` / `name value`.
func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", text)
		}
		labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", text)
		}
		name, rest = fields[0], fields[1]
	}
	if name == "" || !nameRE.MatchString(name) {
		return "", "", 0, fmt.Errorf("invalid metric name in %q", text)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", "", 0, fmt.Errorf("malformed sample value in %q", text)
	}
	value, err = strconv.ParseFloat(strings.TrimPrefix(fields[0], "+"), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %w", text, err)
	}
	return name, labels, value, nil
}

// familyOf strips histogram/summary series suffixes.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// leOf extracts the le label's value from a rendered label set.
func leOf(labels string) (string, bool) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, p := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(p, "le="); ok {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// stripLE removes the le label so one histogram's buckets group.
func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := strings.Split(inner, ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, "le=") && p != "" {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}
