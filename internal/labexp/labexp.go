// Package labexp runs the paper's controlled laboratory experiments
// (§3, Exp1–Exp4) on the simulated Figure 1 topology and summarizes the
// messages observed on the Y1→X1 link and at the collector C1.
package labexp

import (
	"fmt"
	"time"

	"repro/internal/bgp"
	"repro/internal/router"
	"repro/internal/topo"
)

// Experiment identifies one of the paper's four lab scenarios.
type Experiment int

// The four experiments of §3.
const (
	Exp1 Experiment = iota + 1 // no communities: duplicate from next-hop change
	Exp2                       // geo tags, no filtering: nc propagates to collector
	Exp3                       // geo tags, X1 cleans on egress: nn duplicate at collector
	Exp4                       // geo tags, X1 cleans on ingress: spurious update suppressed
)

// String names the experiment as in the paper.
func (e Experiment) String() string { return fmt.Sprintf("Exp%d", int(e)) }

// Config returns the lab policy configuration for the experiment.
func (e Experiment) Config(b router.Behavior) topo.LabConfig {
	cfg := topo.LabConfig{Behavior: b}
	switch e {
	case Exp1:
	case Exp2:
		cfg.GeoTags = true
	case Exp3:
		cfg.GeoTags = true
		cfg.X1CleanEgress = true
	case Exp4:
		cfg.GeoTags = true
		cfg.X1CleanIngress = true
	default:
		panic(fmt.Sprintf("labexp: unknown experiment %d", int(e)))
	}
	return cfg
}

// Result summarizes one run: the messages captured on the two observation
// points the paper instruments (between X1 and Y1, and at the collector).
type Result struct {
	Experiment Experiment
	Behavior   router.Behavior

	// Y1toX1 are updates Y1 sent to X1 after the link event.
	Y1toX1 []router.TracedMessage
	// X1toC1 are updates X1 sent to the collector after the link event.
	X1toC1 []router.TracedMessage
}

// CollectorCommunities returns the community sets seen at the collector,
// one entry per announcement.
func (r Result) CollectorCommunities() []bgp.Communities {
	var out []bgp.Communities
	for _, m := range r.X1toC1 {
		if !m.Withdraw {
			// Canonical may alias the captured update's attrs, which the
			// sender's Adj-RIB-Out still holds; Clone so callers may sort
			// or append freely.
			out = append(out, m.Update.Attrs.Communities.Canonical().Clone())
		}
	}
	return out
}

// Run executes one experiment with one vendor profile: build the converged
// topology, fail Y1–Y2, and capture the induced messages. Only the two
// observation points the paper instruments are recorded — the builder's
// full-trace buffer is replaced by filtered sinks, so nothing else is
// retained.
func Run(e Experiment, b router.Behavior) (Result, error) {
	start := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	lab, err := topo.BuildLab(start, e.Config(b))
	if err != nil {
		return Result{}, fmt.Errorf("labexp: build: %w", err)
	}
	link := func(from, to string, buf *router.TraceBuffer) router.Sink {
		return router.FilterSink(func(m router.TracedMessage) bool {
			return m.From == from && m.To == to
		}, buf)
	}
	y1x1, x1c1 := router.NewTraceBuffer(), router.NewTraceBuffer()
	lab.Net.SetSink(router.MultiSink(link("Y1", "X1", y1x1), link("X1", "C1", x1c1)))
	if err := lab.FailY1Y2(); err != nil {
		return Result{}, fmt.Errorf("labexp: fail link: %w", err)
	}
	return Result{
		Experiment: e,
		Behavior:   b,
		Y1toX1:     y1x1.Messages(),
		X1toC1:     x1c1.Messages(),
	}, nil
}

// MatrixRow is one cell of the vendor × experiment summary (§3 Summary).
type MatrixRow struct {
	Experiment Experiment
	Behavior   string
	// UpdatesAtX1 counts messages Y1→X1; UpdatesAtC1 counts X1→C1.
	UpdatesAtX1 int
	UpdatesAtC1 int
	// DuplicateAtX1 marks a Y1→X1 update whose attributes match what Y1
	// had previously advertised (an RFC-violating duplicate).
	DuplicateAtX1 bool
	// DuplicateAtC1 likewise for the collector link.
	DuplicateAtC1 bool
}

// RunMatrix executes all four experiments across every vendor profile.
func RunMatrix() ([]MatrixRow, error) {
	var rows []MatrixRow
	for _, e := range []Experiment{Exp1, Exp2, Exp3, Exp4} {
		for _, b := range router.AllBehaviors() {
			res, err := Run(e, b)
			if err != nil {
				return nil, err
			}
			row := MatrixRow{
				Experiment:  e,
				Behavior:    b.Name,
				UpdatesAtX1: len(res.Y1toX1),
				UpdatesAtC1: len(res.X1toC1),
			}
			// A duplicate is an announcement whose path and communities are
			// unchanged relative to the pre-event state; in these scenarios
			// any post-event message with the pre-event attribute values is
			// one. Exp1: path and (absent) communities unchanged. Exp3: the
			// cleaned egress makes the collector message attribute-identical.
			switch e {
			case Exp1:
				row.DuplicateAtX1 = row.UpdatesAtX1 > 0
			case Exp3:
				row.DuplicateAtC1 = row.UpdatesAtC1 > 0
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
