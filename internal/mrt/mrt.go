// Package mrt implements the MRT routing information export format
// (RFC 6396) used by the RouteViews and RIPE RIS collector archives the
// paper analyses: BGP4MP / BGP4MP_ET update records and TABLE_DUMP_V2 RIB
// snapshots.
package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/bgp"
)

// MRT record types (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	TypeBGP4MPET    uint16 = 17
)

// BGP4MP subtypes.
const (
	SubtypeStateChange    uint16 = 0
	SubtypeMessage        uint16 = 1
	SubtypeMessageAS4     uint16 = 4
	SubtypeStateChangeAS4 uint16 = 5
)

// TABLE_DUMP_V2 subtypes.
const (
	SubtypePeerIndexTable uint16 = 1
	SubtypeRIBIPv4Unicast uint16 = 2
	SubtypeRIBIPv6Unicast uint16 = 4
)

// Header is the common 12-byte MRT record header.
type Header struct {
	Timestamp time.Time
	Type      uint16
	Subtype   uint16
	// Microsecond holds the extended-timestamp fraction for *_ET records.
	Microsecond uint32
}

// Time returns the record time including the microsecond extension.
func (h Header) Time() time.Time {
	return h.Timestamp.Add(time.Duration(h.Microsecond) * time.Microsecond)
}

// Record is any MRT record body.
type Record interface {
	// MRTType returns the (type, subtype) pair identifying the body layout.
	MRTType() (uint16, uint16)
	appendBody(dst []byte) ([]byte, error)
}

// BGP4MPMessage is a BGP4MP MESSAGE or MESSAGE_AS4 record: one BGP message
// as observed on a collector session.
type BGP4MPMessage struct {
	PeerAS    uint32
	LocalAS   uint32
	IfIndex   uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	// Data is the framed BGP message (including the 19-byte header).
	Data []byte
	// FourByteAS selects the MESSAGE_AS4 subtype.
	FourByteAS bool
}

// MRTType implements Record.
func (m *BGP4MPMessage) MRTType() (uint16, uint16) {
	if m.FourByteAS {
		return TypeBGP4MP, SubtypeMessageAS4
	}
	return TypeBGP4MP, SubtypeMessage
}

// Decode parses the contained BGP message.
func (m *BGP4MPMessage) Decode() (bgp.Message, error) {
	return bgp.Unmarshal(m.Data, bgp.MarshalOptions{FourByteAS: m.FourByteAS})
}

func (m *BGP4MPMessage) appendBody(dst []byte) ([]byte, error) {
	if m.PeerAddr.Is4() != m.LocalAddr.Is4() {
		return nil, fmt.Errorf("mrt: peer %v and local %v address families differ", m.PeerAddr, m.LocalAddr)
	}
	if m.FourByteAS {
		dst = binary.BigEndian.AppendUint32(dst, m.PeerAS)
		dst = binary.BigEndian.AppendUint32(dst, m.LocalAS)
	} else {
		if m.PeerAS > 0xFFFF || m.LocalAS > 0xFFFF {
			return nil, fmt.Errorf("mrt: 4-byte ASN in 2-byte MESSAGE record")
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(m.PeerAS))
		dst = binary.BigEndian.AppendUint16(dst, uint16(m.LocalAS))
	}
	dst = binary.BigEndian.AppendUint16(dst, m.IfIndex)
	afi := bgp.AFIIPv4
	if !m.PeerAddr.Is4() {
		afi = bgp.AFIIPv6
	}
	dst = binary.BigEndian.AppendUint16(dst, afi)
	pa, la := m.PeerAddr.AsSlice(), m.LocalAddr.AsSlice()
	dst = append(dst, pa...)
	dst = append(dst, la...)
	return append(dst, m.Data...), nil
}

func decodeBGP4MPMessage(body []byte, fourByte bool) (*BGP4MPMessage, error) {
	asLen := 2
	if fourByte {
		asLen = 4
	}
	need := 2*asLen + 4
	if len(body) < need {
		return nil, fmt.Errorf("mrt: BGP4MP message header truncated: %d bytes", len(body))
	}
	m := &BGP4MPMessage{FourByteAS: fourByte}
	if fourByte {
		m.PeerAS = binary.BigEndian.Uint32(body[0:4])
		m.LocalAS = binary.BigEndian.Uint32(body[4:8])
	} else {
		m.PeerAS = uint32(binary.BigEndian.Uint16(body[0:2]))
		m.LocalAS = uint32(binary.BigEndian.Uint16(body[2:4]))
	}
	m.IfIndex = binary.BigEndian.Uint16(body[2*asLen:])
	afi := binary.BigEndian.Uint16(body[2*asLen+2:])
	rest := body[need:]
	var alen int
	switch afi {
	case bgp.AFIIPv4:
		alen = 4
	case bgp.AFIIPv6:
		alen = 16
	default:
		return nil, fmt.Errorf("mrt: BGP4MP unsupported AFI %d", afi)
	}
	if len(rest) < 2*alen {
		return nil, fmt.Errorf("mrt: BGP4MP addresses truncated")
	}
	if alen == 4 {
		m.PeerAddr = netip.AddrFrom4([4]byte(rest[:4]))
		m.LocalAddr = netip.AddrFrom4([4]byte(rest[4:8]))
	} else {
		m.PeerAddr = netip.AddrFrom16([16]byte(rest[:16]))
		m.LocalAddr = netip.AddrFrom16([16]byte(rest[16:32]))
	}
	m.Data = append([]byte(nil), rest[2*alen:]...)
	return m, nil
}

// BGP FSM states for STATE_CHANGE records (RFC 6396 §4.4.1).
const (
	StateIdle        uint16 = 1
	StateConnect     uint16 = 2
	StateActive      uint16 = 3
	StateOpenSent    uint16 = 4
	StateOpenConfirm uint16 = 5
	StateEstablished uint16 = 6
)

// BGP4MPStateChange records a session FSM transition.
type BGP4MPStateChange struct {
	PeerAS     uint32
	LocalAS    uint32
	IfIndex    uint16
	PeerAddr   netip.Addr
	LocalAddr  netip.Addr
	OldState   uint16
	NewState   uint16
	FourByteAS bool
}

// MRTType implements Record.
func (s *BGP4MPStateChange) MRTType() (uint16, uint16) {
	if s.FourByteAS {
		return TypeBGP4MP, SubtypeStateChangeAS4
	}
	return TypeBGP4MP, SubtypeStateChange
}

func (s *BGP4MPStateChange) appendBody(dst []byte) ([]byte, error) {
	msg := &BGP4MPMessage{
		PeerAS: s.PeerAS, LocalAS: s.LocalAS, IfIndex: s.IfIndex,
		PeerAddr: s.PeerAddr, LocalAddr: s.LocalAddr, FourByteAS: s.FourByteAS,
	}
	dst, err := msg.appendBody(dst)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, s.OldState)
	return binary.BigEndian.AppendUint16(dst, s.NewState), nil
}

func decodeBGP4MPStateChange(body []byte, fourByte bool) (*BGP4MPStateChange, error) {
	m, err := decodeBGP4MPMessage(body, fourByte)
	if err != nil {
		return nil, err
	}
	if len(m.Data) != 4 {
		return nil, fmt.Errorf("mrt: STATE_CHANGE trailer is %d bytes, want 4", len(m.Data))
	}
	return &BGP4MPStateChange{
		PeerAS: m.PeerAS, LocalAS: m.LocalAS, IfIndex: m.IfIndex,
		PeerAddr: m.PeerAddr, LocalAddr: m.LocalAddr,
		OldState:   binary.BigEndian.Uint16(m.Data[0:2]),
		NewState:   binary.BigEndian.Uint16(m.Data[2:4]),
		FourByteAS: fourByte,
	}, nil
}
