// Tomography demonstrates the paper's §7 outlook: from collector update
// streams alone, infer how each peer AS handles communities (tag /
// clean-on-egress / quiet) and how many distinct ingress locations a
// geo-tagging transit reveals about its customers — then score the
// inferences against the workload's ground truth.
//
// Run with: go run ./examples/tomography
package main

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/stream"
	"repro/internal/textplot"
	"repro/internal/workload"
)

func main() {
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultBeaconConfig(day)
	cfg.Collectors = 6
	cfg.PeersPerCollector = 12
	// Both inferences below scan the same day, so generate it once
	// (session by session, no global sort) and replay the slice; each
	// inference is still a single stream pass, as it would be over live
	// collector archives.
	peers, sources := workload.BeaconSources(cfg)
	src := stream.FromSlice(stream.Collect(stream.Concat(sources...)))

	inferences := analysis.InferPeerBehaviorStream(src, cfg.InWindow)
	fmt.Printf("classified %d peer sessions from their update streams alone:\n\n", len(inferences))

	byClass := map[analysis.PeerBehavior]int{}
	var rows [][]string
	for i, inf := range inferences {
		byClass[inf.Behavior]++
		if i < 12 {
			rows = append(rows, []string{
				fmt.Sprintf("AS%d@%s", inf.PeerAS, inf.Session.Collector),
				fmt.Sprintf("%d", inf.Announcements),
				fmt.Sprintf("%.0f%%", 100*inf.CommShare),
				fmt.Sprintf("%.0f%%", 100*inf.NCShare),
				fmt.Sprintf("%.0f%%", 100*inf.NNShare),
				inf.Behavior.String(),
			})
		}
	}
	fmt.Print(textplot.Table(
		[]string{"session", "anncs", "comm", "nc", "nn", "verdict"}, rows))
	fmt.Printf("  ... and %d more sessions\n\n", len(inferences)-len(rows))

	fmt.Println("class totals:")
	for _, b := range []analysis.PeerBehavior{
		analysis.BehaviorPropagates, analysis.BehaviorCleansEgress, analysis.BehaviorQuiet,
	} {
		fmt.Printf("  %-14s %d sessions\n", b, byClass[b])
	}
	acc := analysis.InferenceAccuracyPeers(peers, inferences)
	fmt.Printf("\naccuracy against the generator's ground truth: %.1f%%\n\n", 100*acc)

	// Interconnection inference: distinct geo locations per (peer, tagger).
	locs := analysis.InferIngressLocationsStream(src)
	fmt.Printf("geo communities reveal ingress footprints for %d (peer, transit) pairs:\n", len(locs))
	for i, inf := range locs {
		if i >= 8 {
			fmt.Printf("  ... and %d more pairs\n", len(locs)-8)
			break
		}
		fmt.Printf("  AS%-6d behind transit AS%-5d: %2d distinct locations revealed\n",
			inf.PeerAS, inf.TaggerAS, inf.Locations)
	}
	fmt.Println("\ncommunities are paradoxical to BGP's information hiding: a remote")
	fmt.Println("observer learns peering breadth and location without any access to")
	fmt.Println("the networks involved (paper §7).")
}
