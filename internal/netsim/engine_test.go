package netsim

import (
	"testing"
	"time"
)

var t0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	n, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("ran %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if !e.Now().Equal(t0.Add(3 * time.Second)) {
		t.Errorf("Now() = %v", e.Now())
	}
}

func TestEngineFIFOWithinInstant(t *testing.T) {
	e := NewEngine(t0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine(t0)
	var hits int
	var recurse func(depth int)
	recurse = func(depth int) {
		hits++
		if depth < 5 {
			e.Schedule(time.Millisecond, func() { recurse(depth + 1) })
		}
	}
	e.Schedule(0, func() { recurse(0) })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if hits != 6 {
		t.Errorf("hits = %d", hits)
	}
}

func TestEngineBudget(t *testing.T) {
	e := NewEngine(t0)
	var loop func()
	loop = func() { e.Schedule(time.Millisecond, loop) }
	e.Schedule(0, loop)
	if _, err := e.Run(100); err == nil {
		t.Error("want budget-exhausted error")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(t0)
	var hits []time.Duration
	for _, d := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second} {
		d := d
		e.Schedule(d, func() { hits = append(hits, d) })
	}
	n := e.RunUntil(t0.Add(6 * time.Second))
	if n != 2 || len(hits) != 2 {
		t.Errorf("ran %d events, hits %v", n, hits)
	}
	if !e.Now().Equal(t0.Add(6 * time.Second)) {
		t.Errorf("Now() = %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d", e.Pending())
	}
	e.RunUntil(t0.Add(time.Hour))
	if len(hits) != 3 {
		t.Errorf("remaining event not run: %v", hits)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine(t0)
	var ran bool
	e.Schedule(time.Second, func() {
		// Scheduling in the past must still execute, at the current instant.
		e.ScheduleAt(t0, func() { ran = true })
	})
	e.Run(0)
	if !ran {
		t.Error("past-scheduled event never ran")
	}
	if e.Now().Before(t0.Add(time.Second)) {
		t.Error("clock went backwards")
	}
}

func TestEngineNegativeDelay(t *testing.T) {
	e := NewEngine(t0)
	ran := false
	e.Schedule(-5*time.Second, func() { ran = true })
	e.Run(0)
	if !ran {
		t.Error("negative-delay event never ran")
	}
	if !e.Now().Equal(t0) {
		t.Errorf("Now() = %v, want %v", e.Now(), t0)
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine(t0)
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}
