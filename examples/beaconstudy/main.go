// Beaconstudy walks through the paper's §6 beacon analyses on a small
// synthetic d_beacon day: it detects community exploration on a single
// route, shows the egress-cleaning duplicate pattern, and attributes every
// unique community attribute to the beacon phase that revealed it.
//
// Run with: go run ./examples/beaconstudy
package main

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/beacon"
	"repro/internal/classify"
	"repro/internal/workload"
)

func main() {
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultBeaconConfig(day)
	cfg.Collectors = 4
	cfg.PeersPerCollector = 10
	ds := workload.GenerateBeacon(cfg)

	fmt.Printf("d_beacon: %d events for %d beacon prefixes across %d sessions\n\n",
		len(ds.Events), len(beacon.RIPEBeacons()), len(ds.Peers))

	// Community exploration (Figure 4): a transparent, geo-tagged session.
	showPath(ds, workload.PeerTransparent,
		"community exploration — transparent peer behind a geo-tagging transit")

	// Duplicate announcements (Figure 5): an egress-cleaning session.
	showPath(ds, workload.PeerCleansEgress,
		"duplicate announcements — peer cleaning communities on egress")

	// Revealed information (Figure 6).
	s := analysis.RevealedForDataset(ds, cfg.Schedule)
	fmt.Println("revealed community attributes by beacon phase:")
	fmt.Printf("  total unique attributes:   %d\n", s.Total)
	fmt.Printf("  withdrawal phases only:    %d (%.1f%%)  <- the paper's 62%%\n",
		s.WithdrawalOnly, 100*s.WithdrawalRatio)
	fmt.Printf("  announcement phases only:  %d (%.1f%%)\n", s.AnnouncementOnly, 100*s.AnnouncementRatio)
	fmt.Printf("  outside any phase:         %d\n", s.OutsideOnly)
	fmt.Printf("  ambiguous:                 %d\n", s.Ambiguous)
	fmt.Println("\nmost of what communities leak about a network is leaked while its")
	fmt.Println("routes are being withdrawn — a side effect of path exploration.")
}

// showPath prints the classified backup-path series of the first session
// matching the peer kind.
func showPath(ds *workload.Dataset, kind workload.PeerKind, title string) {
	var peer *workload.Peer
	for i := range ds.Peers {
		if ds.Peers[i].Kind == kind && ds.Peers[i].TaggedUpstream {
			peer = &ds.Peers[i]
			break
		}
	}
	if peer == nil {
		return
	}
	session := classify.SessionKey{Collector: peer.Collector, PeerAddr: peer.Addr}
	prefix := beacon.RIPEBeacons()[0].Prefix
	var backup string
	for _, e := range ds.Events {
		if e.Session() == session && e.Prefix == prefix && !e.Withdraw &&
			beacon.RIPE.PhaseAt(e.Time) == beacon.PhaseWithdrawal {
			backup = e.ASPath.String()
			break
		}
	}
	series := analysis.CumulativeByPath(ds, session, prefix, backup)
	counts := series.TypeCounts()
	fmt.Printf("%s\n  prefix %v via (%s), session AS%d at %s:\n",
		title, prefix, backup, peer.AS, peer.Collector)
	fmt.Printf("  %d announcements, all during withdrawal phases: ", len(series.Points))
	for _, ty := range classify.Types() {
		if n := counts.Of(ty); n > 0 {
			fmt.Printf("%v×%d ", ty, n)
		}
	}
	fmt.Printf("\n  (%d withdrawal events)\n\n", len(series.Withdrawals))
}
