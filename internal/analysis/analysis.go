// Package analysis computes the paper's tables and figures from normalized
// event streams: the dataset overview (Table 1), announcement-type shares
// (Table 2), the longitudinal type series (Figure 2), per-session type
// mixes (Figure 3), per-path cumulative series (Figures 4/5), and the
// revealed-community attribution (Figure 6).
//
// Every analysis is a single pass over a stream.EventSource; the
// *Dataset-taking functions are thin wrappers that stream a materialized
// workload.Dataset. MRT-archive-backed sources (pipeline.DirSources) and
// lazily generated sources (workload.DaySources) drive the same analyses
// without ever holding a full event slice.
package analysis

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/beacon"
	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Table1 is the d_mar20 overview (paper Table 1).
type Table1 struct {
	PrefixesV4 int
	PrefixesV6 int
	ASes       int
	Sessions   int
	Peers      int

	Announcements   int
	WithCommunities int
	// UniqueCommunities counts distinct 16-bit-encoded (RFC 1997) community
	// values across all announcements (paper: "uniq. 16 bits").
	UniqueCommunities int
	UniqueASPaths     int
	Withdrawals       int
}

// table1Accum incrementally builds Table 1 from in-window events.
type table1Accum struct {
	t1       Table1
	v4, v6   map[netip.Prefix]struct{}
	ases     map[uint32]struct{}
	sessions map[classify.SessionKey]struct{}
	peers    map[uint32]struct{}
	comms    map[bgp.Community]struct{}
	paths    map[string]struct{}
}

func newTable1Accum() *table1Accum {
	return &table1Accum{
		v4:       make(map[netip.Prefix]struct{}),
		v6:       make(map[netip.Prefix]struct{}),
		ases:     make(map[uint32]struct{}),
		sessions: make(map[classify.SessionKey]struct{}),
		peers:    make(map[uint32]struct{}),
		comms:    make(map[bgp.Community]struct{}),
		paths:    make(map[string]struct{}),
	}
}

func (a *table1Accum) observe(e classify.Event) {
	a.sessions[e.Session()] = struct{}{}
	a.peers[e.PeerAS] = struct{}{}
	if e.Prefix.Addr().Is4() {
		a.v4[e.Prefix] = struct{}{}
	} else {
		a.v6[e.Prefix] = struct{}{}
	}
	if e.Withdraw {
		a.t1.Withdrawals++
		return
	}
	a.t1.Announcements++
	if len(e.Communities) > 0 {
		a.t1.WithCommunities++
		for _, c := range e.Communities {
			a.comms[c] = struct{}{}
		}
	}
	for _, as := range e.ASPath.Flatten() {
		a.ases[as] = struct{}{}
	}
	a.paths[e.ASPath.String()] = struct{}{}
}

func (a *table1Accum) finish() Table1 {
	a.t1.PrefixesV4 = len(a.v4)
	a.t1.PrefixesV6 = len(a.v6)
	a.t1.ASes = len(a.ases)
	a.t1.Sessions = len(a.sessions)
	a.t1.Peers = len(a.peers)
	a.t1.UniqueCommunities = len(a.comms)
	a.t1.UniqueASPaths = len(a.paths)
	return a.t1
}

// ComputeTable1Stream scans a source's in-window events in one pass
// (inWindow nil counts everything).
func ComputeTable1Stream(src stream.EventSource, inWindow func(classify.Event) bool) Table1 {
	acc := newTable1Accum()
	for e := range src {
		if inWindow != nil && !inWindow(e) {
			continue
		}
		acc.observe(e)
	}
	return acc.finish()
}

// ComputeTable1 scans the dataset's in-window events.
func ComputeTable1(ds *workload.Dataset) Table1 {
	return ComputeTable1Stream(ds.Source(), ds.CountingWindow)
}

// Report computes Table 1 and the Table 2 type counts in one combined
// pass over the stream — the full §4–§5 measurement on archive-backed
// sources that can only be read once.
func Report(src stream.EventSource, inWindow func(classify.Event) bool) (Table1, classify.Counts) {
	acc := newTable1Accum()
	cl := classify.New()
	var counts classify.Counts
	for e := range src {
		res, ok := cl.Observe(e)
		if inWindow != nil && !inWindow(e) {
			continue
		}
		acc.observe(e)
		if !ok {
			counts.Withdrawals++
			continue
		}
		counts.Add(res)
	}
	return acc.finish(), counts
}

// ClassifyDataset runs the classifier over all events in order (warm-up
// events seed stream state) and tallies only in-window events — the
// Table 2 computation. Equivalent to stream.Classify over the dataset.
func ClassifyDataset(ds *workload.Dataset) classify.Counts {
	return stream.Classify(ds.Source(), ds.CountingWindow)
}

// Figure2Row is one day of the longitudinal type series.
type Figure2Row struct {
	Year   int
	Counts classify.Counts
}

// Figure2Series generates and classifies one synthetic day per year over
// [fromYear, toYear], the scaled-down analogue of Figure 2's quarterly
// series. Each day streams session by session through the classifier
// without being materialized or globally sorted.
func Figure2Series(fromYear, toYear int) []Figure2Row {
	var rows []Figure2Row
	for y := fromYear; y <= toYear; y++ {
		cfg := workload.HistoricalDayConfig(y)
		_, sources := workload.DaySources(cfg)
		counts := stream.Classify(stream.Concat(sources...), cfg.InWindow)
		rows = append(rows, Figure2Row{Year: y, Counts: counts})
	}
	return rows
}

// SessionMix is one bar of Figure 3: the announcement-type mix one session
// observed for one beacon prefix.
type SessionMix struct {
	Session classify.SessionKey
	PeerAS  uint32
	Counts  classify.Counts
}

// Total returns the session's announcement count.
func (s SessionMix) Total() int { return s.Counts.Announcements() }

// Figure3PerSessionStream classifies a source and returns, for one
// collector and prefix, each session's type mix sorted by descending
// announcement count (the paper's stacked bars for 84.205.64.0/24 at
// rrc00). The source must preserve per-session event order.
func Figure3PerSessionStream(src stream.EventSource, inWindow func(classify.Event) bool, collector string, prefix netip.Prefix) []SessionMix {
	cl := classify.New()
	mixes := make(map[classify.SessionKey]*SessionMix)
	for e := range src {
		res, ok := cl.Observe(e)
		if (inWindow != nil && !inWindow(e)) || e.Collector != collector || e.Prefix != prefix {
			continue
		}
		key := e.Session()
		m := mixes[key]
		if m == nil {
			m = &SessionMix{Session: key, PeerAS: e.PeerAS}
			mixes[key] = m
		}
		if !ok {
			m.Counts.Withdrawals++
			continue
		}
		m.Counts.Add(res)
	}
	out := make([]SessionMix, 0, len(mixes))
	for _, m := range mixes {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Session.PeerAddr.Compare(out[j].Session.PeerAddr) < 0
	})
	return out
}

// Figure3PerSession is Figure3PerSessionStream over a materialized dataset.
func Figure3PerSession(ds *workload.Dataset, collector string, prefix netip.Prefix) []SessionMix {
	return Figure3PerSessionStream(ds.Source(), ds.CountingWindow, collector, prefix)
}

// CumPoint is one classified announcement on a (session, prefix, path)
// stream.
type CumPoint struct {
	Time time.Time
	Type classify.Type
}

// CumSeries is the Figure 4/5 data: announcements over the day for one
// prefix via one AS path on one session, plus the withdrawal instants
// (the vertical lines in the figures).
type CumSeries struct {
	Points      []CumPoint
	Withdrawals []time.Time
}

// CumulativeByPathStream classifies a source and extracts the
// announcements of one session and prefix whose AS path matches pathStr.
func CumulativeByPathStream(src stream.EventSource, inWindow func(classify.Event) bool, session classify.SessionKey, prefix netip.Prefix, pathStr string) CumSeries {
	cl := classify.New()
	var out CumSeries
	for e := range src {
		res, ok := cl.Observe(e)
		if (inWindow != nil && !inWindow(e)) || e.Session() != session || e.Prefix != prefix {
			continue
		}
		if !ok {
			out.Withdrawals = append(out.Withdrawals, e.Time)
			continue
		}
		if e.ASPath.String() != pathStr {
			continue
		}
		out.Points = append(out.Points, CumPoint{Time: e.Time, Type: res.Type})
	}
	return out
}

// CumulativeByPath is CumulativeByPathStream over a materialized dataset.
func CumulativeByPath(ds *workload.Dataset, session classify.SessionKey, prefix netip.Prefix, pathStr string) CumSeries {
	return CumulativeByPathStream(ds.Source(), ds.CountingWindow, session, prefix, pathStr)
}

// TypeCounts tallies the series by type.
func (c CumSeries) TypeCounts() classify.Counts {
	var counts classify.Counts
	for _, p := range c.Points {
		counts.Add(classify.Result{Type: p.Type})
	}
	return counts
}

// RevealedForStream runs the Figure 6 attribution over a beacon source.
func RevealedForStream(src stream.EventSource, inWindow func(classify.Event) bool, sched beacon.Schedule) beacon.RevealedSummary {
	tracker := beacon.NewRevealedTracker(sched)
	for e := range src {
		if (inWindow != nil && !inWindow(e)) || e.Withdraw {
			continue
		}
		tracker.Observe(e.Time, e.Communities)
	}
	return tracker.Summary()
}

// RevealedForDataset runs the Figure 6 attribution over a beacon dataset.
func RevealedForDataset(ds *workload.Dataset, sched beacon.Schedule) beacon.RevealedSummary {
	return RevealedForStream(ds.Source(), ds.CountingWindow, sched)
}

// Figure6Row is one year of the revealed-information series.
type Figure6Row struct {
	Year    int
	Summary beacon.RevealedSummary
}

// Figure6Series generates beacon update streams per year and attributes
// their community reveals, session by session without materializing.
func Figure6Series(fromYear, toYear int) []Figure6Row {
	var rows []Figure6Row
	for y := fromYear; y <= toYear; y++ {
		cfg := workload.HistoricalBeaconConfig(y)
		_, sources := workload.BeaconSources(cfg)
		summary := RevealedForStream(stream.Concat(sources...), cfg.InWindow, cfg.Schedule)
		rows = append(rows, Figure6Row{Year: y, Summary: summary})
	}
	return rows
}

// BeaconSubsetStream filters a source to the RIPE beacon prefixes, the
// paper's d_beacon selection from d_hist.
func BeaconSubsetStream(src stream.EventSource) stream.EventSource {
	return stream.Filter(src, func(e classify.Event) bool {
		return beacon.IsBeaconPrefix(e.Prefix)
	})
}

// BeaconSubset filters a dataset to the RIPE beacon prefixes.
func BeaconSubset(ds *workload.Dataset) *workload.Dataset {
	return &workload.Dataset{
		Day:    ds.Day,
		Peers:  ds.Peers,
		Events: stream.Collect(BeaconSubsetStream(ds.Source())),
	}
}

// Figure2QuarterRow is one quarterly sample of the longitudinal series.
type Figure2QuarterRow struct {
	Year    int
	Quarter int // 0-3: Mar/Jun/Sep/Dec 15
	Counts  classify.Counts
}

// Figure2SeriesQuarterly reproduces the paper's actual §4 sampling: one
// day every three months across the year range (Figure 2's x axis).
func Figure2SeriesQuarterly(fromYear, toYear int) []Figure2QuarterRow {
	var rows []Figure2QuarterRow
	for y := fromYear; y <= toYear; y++ {
		for q := 0; q < 4; q++ {
			cfg := workload.HistoricalQuarterConfig(y, q)
			_, sources := workload.DaySources(cfg)
			counts := stream.Classify(stream.Concat(sources...), cfg.InWindow)
			rows = append(rows, Figure2QuarterRow{Year: y, Quarter: q, Counts: counts})
		}
	}
	return rows
}
