package classify

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp"
)

var (
	beacon = netip.MustParsePrefix("84.205.64.0/24")
	peer   = netip.MustParseAddr("203.0.113.5")
	t0     = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
)

func ev(path string, comms ...bgp.Community) Event {
	p, err := bgp.ParseASPath(path)
	if err != nil {
		panic(err)
	}
	return Event{
		Time:        t0,
		Collector:   "rrc00",
		PeerAS:      20205,
		PeerAddr:    peer,
		Prefix:      beacon,
		ASPath:      p,
		Communities: bgp.Communities(comms).Canonical(),
	}
}

func withdraw() Event {
	e := ev("")
	e.Withdraw = true
	e.ASPath = nil
	return e
}

func classifySeq(t *testing.T, events ...Event) []Result {
	t.Helper()
	c := New()
	var out []Result
	for _, e := range events {
		res, ok := c.Observe(e)
		if ok {
			out = append(out, res)
		}
	}
	return out
}

func TestFirstAnnouncement(t *testing.T) {
	res := classifySeq(t, ev("20205 3356 174 12654", bgp.NewCommunity(3356, 901)))
	if len(res) != 1 || !res[0].First || res[0].Type != PC {
		t.Errorf("first with communities: %+v", res)
	}
	res = classifySeq(t, ev("20205 3356 174 12654"))
	if len(res) != 1 || !res[0].First || res[0].Type != PN {
		t.Errorf("first without communities: %+v", res)
	}
}

func TestTypeMatrix(t *testing.T) {
	base := ev("20205 3356 174 12654", bgp.NewCommunity(3356, 901))
	cases := []struct {
		name string
		next Event
		want Type
	}{
		{"pc", ev("20205 6939 50304 12654", bgp.NewCommunity(6939, 1)), PC},
		{"pn", ev("20205 6939 50304 12654", bgp.NewCommunity(3356, 901)), PN},
		{"nc", ev("20205 3356 174 12654", bgp.NewCommunity(3356, 902)), NC},
		{"nn", ev("20205 3356 174 12654", bgp.NewCommunity(3356, 901)), NN},
		{"xc", ev("20205 3356 3356 174 12654", bgp.NewCommunity(3356, 902)), XC},
		{"xn", ev("20205 3356 3356 174 12654", bgp.NewCommunity(3356, 901)), XN},
	}
	for _, tc := range cases {
		res := classifySeq(t, base, tc.next)
		if len(res) != 2 {
			t.Fatalf("%s: %d results", tc.name, len(res))
		}
		if res[1].Type != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, res[1].Type, tc.want)
		}
		if res[1].First {
			t.Errorf("%s: second announcement marked First", tc.name)
		}
	}
}

func TestCommunityGoneIsNC(t *testing.T) {
	res := classifySeq(t,
		ev("20205 3356 12654", bgp.NewCommunity(3356, 901)),
		ev("20205 3356 12654"),
	)
	if res[1].Type != NC {
		t.Errorf("losing all communities: %v, want nc", res[1].Type)
	}
}

func TestEmptyToEmptyIsNN(t *testing.T) {
	// §5: "nn announcements also include two empty community attributes in
	// succession."
	res := classifySeq(t,
		ev("20205 3356 12654"),
		ev("20205 3356 12654"),
	)
	if res[1].Type != NN {
		t.Errorf("empty→empty: %v, want nn", res[1].Type)
	}
}

func TestWithdrawalResetsStream(t *testing.T) {
	c := New()
	c.Observe(ev("20205 3356 12654", bgp.NewCommunity(3356, 901)))
	if _, ok := c.Observe(withdraw()); ok {
		t.Fatal("withdrawal classified as announcement")
	}
	res, ok := c.Observe(ev("20205 3356 12654", bgp.NewCommunity(3356, 901)))
	if !ok || !res.First || res.Type != PC {
		t.Errorf("after withdrawal: %+v (must restart stream with pc)", res)
	}
}

func TestPrependRemovalIsAlsoX(t *testing.T) {
	res := classifySeq(t,
		ev("20205 3356 3356 12654"),
		ev("20205 3356 12654"),
	)
	if res[1].Type != XN {
		t.Errorf("prepend removal: %v, want xn", res[1].Type)
	}
}

func TestMEDChangeAnnotation(t *testing.T) {
	a := ev("20205 3356 12654")
	a.HasMED, a.MED = true, 10
	b := ev("20205 3356 12654")
	b.HasMED, b.MED = true, 20
	res := classifySeq(t, a, b)
	if res[1].Type != NN || !res[1].MEDChanged {
		t.Errorf("MED change: %+v", res[1])
	}
	// Same MED: no annotation.
	res = classifySeq(t, a, a)
	if res[1].Type != NN || res[1].MEDChanged {
		t.Errorf("same MED: %+v", res[1])
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	c := New()
	e1 := ev("20205 3356 12654", bgp.NewCommunity(3356, 901))
	e2 := ev("20205 3356 12654", bgp.NewCommunity(3356, 901))
	e2.Prefix = netip.MustParsePrefix("84.205.65.0/24")
	e3 := ev("20205 3356 12654", bgp.NewCommunity(3356, 901))
	e3.PeerAddr = netip.MustParseAddr("203.0.113.9")
	e4 := ev("20205 3356 12654", bgp.NewCommunity(3356, 901))
	e4.Collector = "rrc01"
	for i, e := range []Event{e1, e2, e3, e4} {
		res, ok := c.Observe(e)
		if !ok || !res.First {
			t.Errorf("event %d should start its own stream: %+v", i, res)
		}
	}
	if c.Streams() != 4 {
		t.Errorf("Streams() = %d", c.Streams())
	}
}

func TestCommunityExplorationSequence(t *testing.T) {
	// The Figure 4 pattern: during each withdrawal phase the backup route
	// appears with rotating geo communities: pc, nc, nc, then a withdrawal;
	// repeated per phase.
	c := New()
	var counts Counts
	for phase := 0; phase < 6; phase++ {
		counts.Observe(c, ev("20205 3356 174 12654", bgp.NewCommunity(3356, 501)))
		counts.Observe(c, ev("20205 3356 174 12654", bgp.NewCommunity(3356, 502)))
		counts.Observe(c, ev("20205 3356 174 12654", bgp.NewCommunity(3356, 503)))
		counts.Observe(c, withdraw())
	}
	if got := counts.Of(PC); got != 6 {
		t.Errorf("pc = %d, want 6 (one per phase)", got)
	}
	if got := counts.Of(NC); got != 12 {
		t.Errorf("nc = %d, want 12", got)
	}
	if counts.Withdrawals != 6 {
		t.Errorf("withdrawals = %d", counts.Withdrawals)
	}
	if counts.Announcements() != 18 {
		t.Errorf("announcements = %d", counts.Announcements())
	}
}

func TestCountsShares(t *testing.T) {
	var c Counts
	c.Add(Result{Type: PC})
	c.Add(Result{Type: NC})
	c.Add(Result{Type: NN})
	c.Add(Result{Type: NN})
	if c.Share(NN) != 0.5 {
		t.Errorf("Share(nn) = %f", c.Share(NN))
	}
	if c.NoPathChangeShare() != 0.75 {
		t.Errorf("NoPathChangeShare() = %f", c.NoPathChangeShare())
	}
	var empty Counts
	if empty.Share(PC) != 0 {
		t.Error("empty share should be 0")
	}
}

func TestCountsMerge(t *testing.T) {
	var a, b Counts
	a.Add(Result{Type: PC})
	a.Withdrawals = 2
	b.Add(Result{Type: NN, MEDChanged: true})
	b.Withdrawals = 3
	a.Merge(b)
	if a.Of(PC) != 1 || a.Of(NN) != 1 || a.Withdrawals != 5 || a.MEDOnlyNN != 1 {
		t.Errorf("merge: %+v", a)
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{PC: "pc", PN: "pn", NC: "nc", NN: "nn", XC: "xc", XN: "xn"}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(typ), typ.String(), s)
		}
	}
	if Type(99).String() != "type(99)" {
		t.Error("unknown type string")
	}
	if len(Types()) != 6 {
		t.Error("Types() length")
	}
	if !NC.NoPathChange() || !NN.NoPathChange() || PC.NoPathChange() || XN.NoPathChange() {
		t.Error("NoPathChange misassigned")
	}
}

func TestCommunityOrderIrrelevant(t *testing.T) {
	// Events carry canonical community sets; the same set in a different
	// arrival order must be nn, not nc.
	a := ev("20205 3356 12654", bgp.NewCommunity(3356, 901), bgp.NewCommunity(3356, 2))
	b := ev("20205 3356 12654", bgp.NewCommunity(3356, 2), bgp.NewCommunity(3356, 901))
	res := classifySeq(t, a, b)
	if res[1].Type != NN {
		t.Errorf("reordered communities: %v, want nn", res[1].Type)
	}
}
