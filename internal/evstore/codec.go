package evstore

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"repro/internal/lz"
)

// Codec identifies a block payload compression codec. The numeric
// values are the on-disk per-block codec ids of the v2 partition
// format and must never be renumbered.
type Codec uint8

const (
	// CodecRaw stores the payload uncompressed. Also the automatic
	// fallback when a compressor fails to shrink a block.
	CodecRaw Codec = 0
	// CodecDeflate is compress/flate at BestSpeed — the v1 format's
	// only codec, kept for legacy stores. Densest, slowest to decode.
	CodecDeflate Codec = 1
	// CodecLZ is the in-repo LZ4-style codec (internal/lz): slightly
	// larger blocks than deflate, several times faster to decompress.
	CodecLZ Codec = 2

	// NumCodecs bounds the valid codec ids — also the length of
	// ScanStats.PerCodec.
	NumCodecs = 3
)

// DefaultCodec is what Open configures on new writers.
const DefaultCodec = CodecLZ

func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecDeflate:
		return "deflate"
	case CodecLZ:
		return "lz"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

func (c Codec) valid() bool { return c < NumCodecs }

// ParseCodec maps a codec name ("raw", "deflate", "lz") to its id.
func ParseCodec(s string) (Codec, error) {
	for c := Codec(0); c < NumCodecs; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("evstore: unknown codec %q (want raw, deflate, or lz)", s)
}

// blockCompressor holds the encode-side state for every codec; one
// instance serves a writer's sequential flushes. The slice returned by
// compress is valid until the next call.
type blockCompressor struct {
	flate *flate.Writer
	fbuf  bytes.Buffer
	enc   lz.Encoder
	lbuf  []byte
}

// compress encodes payload under the requested codec and returns the
// bytes to store plus the codec id to record. A compressed form at
// least as large as the input falls back to CodecRaw — per-block codec
// dispatch makes the fallback free for readers.
func (bc *blockCompressor) compress(c Codec, payload []byte) ([]byte, Codec, error) {
	switch c {
	case CodecRaw:
		return payload, CodecRaw, nil
	case CodecDeflate:
		if err := bc.deflate(payload); err != nil {
			return nil, 0, err
		}
		if bc.fbuf.Len() >= len(payload) {
			return payload, CodecRaw, nil
		}
		return bc.fbuf.Bytes(), CodecDeflate, nil
	case CodecLZ:
		bc.lbuf = bc.enc.Compress(bc.lbuf[:0], payload)
		if len(bc.lbuf) >= len(payload) {
			return payload, CodecRaw, nil
		}
		return bc.lbuf, CodecLZ, nil
	}
	return nil, 0, fmt.Errorf("evstore: unknown codec %d", c)
}

// deflate fills bc.fbuf with the deflated payload (no raw fallback —
// the v1 legacy format has no codec ids, so its blocks must be deflate
// whatever the size).
func (bc *blockCompressor) deflate(payload []byte) error {
	bc.fbuf.Reset()
	if bc.flate == nil {
		fw, err := flate.NewWriter(&bc.fbuf, flate.BestSpeed)
		if err != nil {
			return err
		}
		bc.flate = fw
	} else {
		bc.flate.Reset(&bc.fbuf)
	}
	if _, err := bc.flate.Write(payload); err != nil {
		return err
	}
	return bc.flate.Close()
}

// blockDecompressor holds the decode-side state for every codec; safe
// to reuse across blocks, not across goroutines.
type blockDecompressor struct {
	src     bytes.Reader
	inflate io.ReadCloser
}

// decompress fills dst (sized to the block's uncompressed length) from
// the stored bytes of a block coded with c.
func (bd *blockDecompressor) decompress(c Codec, dst, src []byte) error {
	switch c {
	case CodecRaw:
		if len(src) != len(dst) {
			return fmt.Errorf("evstore: raw block length %d, footer says %d", len(src), len(dst))
		}
		copy(dst, src)
		return nil
	case CodecDeflate:
		bd.src.Reset(src)
		if bd.inflate == nil {
			bd.inflate = flate.NewReader(&bd.src)
		} else if err := bd.inflate.(flate.Resetter).Reset(&bd.src, nil); err != nil {
			return fmt.Errorf("evstore: inflate reset: %w", err)
		}
		if _, err := io.ReadFull(bd.inflate, dst); err != nil {
			return fmt.Errorf("evstore: inflate: %w", err)
		}
		return nil
	case CodecLZ:
		if err := lz.Decompress(dst, src); err != nil {
			return fmt.Errorf("evstore: %w", err)
		}
		return nil
	}
	return fmt.Errorf("evstore: unknown codec %d", c)
}
