// Package obs is the production observability plane: a small,
// dependency-free metrics registry (counters, gauges, histograms with
// atomic hot paths and Prometheus text-format exposition) plus the
// structured-logging setup shared by every daemon.
//
// Design points:
//
//   - Hot paths are lock-free. Counter.Add and Histogram.Observe are
//     single atomic operations (plus one CAS loop for the histogram
//     sum); labeled instruments resolve through a sync.Map so the
//     steady state is one lock-free lookup. Instrumenting the serving
//     hot path must cost nanoseconds, not microseconds — the cached
//     answer tier it measures is itself only ~1µs.
//
//   - Sampled instruments thread through EXISTING bookkeeping. The
//     daemons already keep deep internal counters (serve.ServerStats,
//     evstore.ScanStats, ingest.CollectorStats); CounterFunc/GaugeFunc
//     and OnScrape samplers read those at scrape time instead of
//     maintaining a second, drift-prone set of books.
//
//   - Exposition is deterministic: families sorted by name, series by
//     label values, histogram buckets fixed at registration — so
//     scrape output is diffable and the format tests can pin it.
//
// Lint validates exposition output (tests and the load generator both
// use it); NewLogger builds the shared slog setup (-log-format
// text|json).
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets is the shared latency histogram layout, in seconds:
// 100µs to 10s, roughly exponential. One fixed layout for every
// latency histogram keeps cross-daemon dashboards comparable and is
// pinned by a determinism test — changing it silently would corrupt
// recorded history.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the shared byte-size histogram layout: 1KiB to 1GiB
// in powers of 8.
var SizeBuckets = []float64{
	1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20, 32 << 20, 256 << 20, 1 << 30,
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds a daemon's metric families and renders them in
// Prometheus text format. Safe for concurrent use; registration
// usually happens once at startup, scrapes and instrument updates run
// concurrently for the daemon's lifetime.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	samplers []func()
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name   string
	help   string
	typ    string   // "counter", "gauge", "histogram"
	labels []string // label names; nil for a single unlabeled series

	// series maps joined label values to the instrument. Unlabeled
	// families hold exactly one series under the empty key.
	series sync.Map // string -> instrument
	// seriesMu serializes creation so two goroutines materializing the
	// same child can't produce distinct instruments.
	seriesMu sync.Mutex
}

// instrument is anything a family can hold a series of.
type instrument interface {
	// sampleInto appends the series' sample lines.
	sampleInto(b *strings.Builder, name, labelPart string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on an invalid or duplicate name —
// metric registration is daemon wiring, and a name collision is a
// programming error that must fail at startup, not corrupt series at
// scrape time.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels}
	r.families[name] = f
	return f
}

// OnScrape registers a sampler run before every exposition — the hook
// that threads existing stats structs (queue depths, feed states,
// shard health) into gauges exactly when they are observed.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.samplers = append(r.samplers, fn)
	r.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing uint64. The zero Counter is
// ready to use once obtained from a registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) sampleInto(b *strings.Builder, name, labelPart string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labelPart, c.v.Load())
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	c := &Counter{}
	f.series.Store("", c)
	return c
}

// counterFunc samples a cumulative value from existing bookkeeping.
type counterFunc func() uint64

func (fn counterFunc) sampleInto(b *strings.Builder, name, labelPart string) {
	fmt.Fprintf(b, "%s%s %d\n", name, labelPart, fn())
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonic (it reads an existing cumulative
// counter) and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, "counter", nil)
	f.series.Store("", counterFunc(fn))
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs labels", name))
	}
	return &CounterVec{r.register(name, help, "counter", labels)}
}

// With returns the child counter for the given label values (created
// on first use). The steady state is one lock-free map hit; callers on
// very hot paths may cache the child.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() instrument { return &Counter{} }).(*Counter)
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; gauges are not as hot as counters).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger — high-water tracking.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) sampleInto(b *strings.Builder, name, labelPart string) {
	fmt.Fprintf(b, "%s%s %s\n", name, labelPart, formatFloat(g.Value()))
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	g := &Gauge{}
	f.series.Store("", g)
	return g
}

// gaugeFunc samples a point-in-time value from existing bookkeeping.
type gaugeFunc func() float64

func (fn gaugeFunc) sampleInto(b *strings.Builder, name, labelPart string) {
	fmt.Fprintf(b, "%s%s %s\n", name, labelPart, formatFloat(fn()))
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.series.Store("", gaugeFunc(fn))
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs labels", name))
	}
	return &GaugeVec{r.register(name, help, "gauge", labels)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() instrument { return &Gauge{} }).(*Gauge)
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

// Histogram counts observations into fixed cumulative buckets.
// Observe is two atomic adds plus one CAS for the sum; bucket count
// and layout are fixed at registration.
type Histogram struct {
	uppers  []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %v", uppers[i]))
		}
	}
	return &Histogram{
		uppers:  append([]float64(nil), uppers...),
		buckets: make([]atomic.Uint64, len(uppers)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: latency layouts are ~16 buckets and most
	// observations land in the first few, so this beats binary search
	// in practice and keeps the code branch-predictable.
	for i, ub := range h.uppers {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) sampleInto(b *strings.Builder, name, labelPart string) {
	// Bucket counts are cumulative in the exposition. Reads race
	// concurrent Observes benignly: each bucket is read once, so a
	// scrape sees some consistent-enough prefix; the lint invariants
	// (monotone cumulative counts, +Inf == count) are preserved by
	// summing in order and emitting the same total for both.
	labels := labelPart
	if labels != "" {
		labels = labels[:len(labels)-1] + ","
	} else {
		labels = "{"
	}
	var cum uint64
	for i, ub := range h.uppers {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", name, labels, formatFloat(ub), cum)
	}
	total := cum + h.infCount(cum)
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, labels, total)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelPart, formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelPart, total)
}

// infCount derives the +Inf bucket's increment: observations beyond
// the last bound incremented count but no bucket.
func (h *Histogram) infCount(cumSoFar uint64) uint64 {
	total := h.count.Load()
	if total < cumSoFar {
		// A racing Observe bumped a bucket before count; clamp so the
		// exposition stays internally consistent.
		return 0
	}
	return total - cumSoFar
}

// Histogram registers and returns an unlabeled histogram with the
// given bucket upper bounds (nil: LatencyBuckets).
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	if uppers == nil {
		uppers = LatencyBuckets
	}
	f := r.register(name, help, "histogram", nil)
	h := newHistogram(uppers)
	f.series.Store("", h)
	return h
}

// HistogramVec is a histogram family with labels; every child shares
// one bucket layout.
type HistogramVec struct {
	f      *family
	uppers []float64
}

// HistogramVec registers a labeled histogram family (nil uppers:
// LatencyBuckets).
func (r *Registry) HistogramVec(name, help string, uppers []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: HistogramVec %q needs labels", name))
	}
	if uppers == nil {
		uppers = LatencyBuckets
	}
	// Validate once so child creation can't panic mid-serve.
	newHistogram(uppers)
	return &HistogramVec{r.register(name, help, "histogram", labels), append([]float64(nil), uppers...)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() instrument { return newHistogram(v.uppers) }).(*Histogram)
}

// ---------------------------------------------------------------------------
// family internals
// ---------------------------------------------------------------------------

// child resolves (creating on first use) the series for a label-value
// tuple.
func (f *family) child(values []string, mk func() instrument) instrument {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	if got, ok := f.series.Load(key); ok {
		return got.(instrument)
	}
	f.seriesMu.Lock()
	defer f.seriesMu.Unlock()
	if got, ok := f.series.Load(key); ok {
		return got.(instrument)
	}
	inst := mk()
	f.series.Store(key, inst)
	return inst
}

// labelPart renders {a="x",b="y"} for a series key ("" for none).
func (f *family) labelPart(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := strings.Split(key, "\xff")
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the Prometheus way: integers without
// exponent noise, everything else shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() ([]*family, []func()) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	samplers := append([]func(){}, r.samplers...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams, samplers
}
