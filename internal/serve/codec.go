package serve

import (
	"fmt"
	"time"

	"repro/internal/evstore"
	"repro/internal/wire"
)

// Wire codecs for the coordinator↔shard protocol: a QuerySpec is the
// POST /v1/state request body, a StateEnvelope the response. Both are
// built on the internal/wire primitives (magic header, varint framing,
// sticky-error reads) so a truncated or corrupt message is an error —
// never a silent misparse — and trailing garbage is rejected so a
// framing bug cannot hide behind a successful decode.

const (
	specMagic = "CSQ1" // Comm Serve Query v1
	// v2 extends ScanStats with the codec-era counters (bytes read,
	// prefetched blocks, per-codec split). Coordinator and shards are
	// deployed together, so the envelope has no cross-version decode
	// path: a mixed fleet fails loudly on the magic instead of
	// misparsing.
	envelopeMagic = "CSE2" // Comm Serve Envelope v2

	// maxSpecBytes bounds a /v1/state request body; specs are tiny, so
	// anything near this is garbage.
	maxSpecBytes = 1 << 20
	// maxEnvelopeBytes bounds a shard response read. Analyzer states
	// scale with distinct sessions/prefixes, not events, so even
	// archive-scale stores stay far below this.
	maxEnvelopeBytes = 1 << 30
)

// appendTimeOpt encodes a possibly-zero time. wire.AppendTime encodes
// UnixNano, under which the zero time.Time is not representable, so
// optional bounds carry a presence byte.
func appendTimeOpt(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return wire.AppendTime(dst, t)
}

func readTimeOpt(r *wire.Reader) time.Time {
	b := r.Bytes(1)
	if r.Err() != nil || b[0] == 0 {
		if r.Err() == nil && b[0] != 0 && b[0] != 1 {
			r.Fail("serve: bad time presence byte %d", b[0])
		}
		return time.Time{}
	}
	if b[0] != 1 {
		r.Fail("serve: bad time presence byte %d", b[0])
		return time.Time{}
	}
	return r.Time()
}

// AppendQuerySpec encodes a spec for the wire.
func AppendQuerySpec(dst []byte, spec QuerySpec) []byte {
	dst = append(dst, specMagic...)
	dst = wire.AppendString(dst, spec.Kind)
	dst = appendTimeOpt(dst, spec.Window.From)
	dst = appendTimeOpt(dst, spec.Window.To)
	dst = wire.AppendUvarint(dst, uint64(len(spec.Collectors)))
	for _, c := range spec.Collectors {
		dst = wire.AppendString(dst, c)
	}
	dst = wire.AppendUvarint(dst, uint64(len(spec.PeerAS)))
	for _, as := range spec.PeerAS {
		dst = wire.AppendUvarint(dst, uint64(as))
	}
	dst = wire.AppendPrefix(dst, spec.PrefixRange)
	dst = wire.AppendVarint(dst, int64(spec.FromYear))
	dst = wire.AppendVarint(dst, int64(spec.ToYear))
	dst = wire.AppendString(dst, spec.Collector)
	dst = wire.AppendPrefix(dst, spec.Prefix)
	dst = wire.AppendAddr(dst, spec.PeerAddr)
	dst = wire.AppendString(dst, spec.Path)
	return dst
}

// DecodeQuerySpec decodes an AppendQuerySpec message, rejecting
// truncation, bad framing, and trailing bytes.
func DecodeQuerySpec(b []byte) (QuerySpec, error) {
	var spec QuerySpec
	r := wire.NewReader(b)
	if string(r.Bytes(len(specMagic))) != specMagic {
		return spec, fmt.Errorf("serve: bad query-spec magic")
	}
	spec.Kind = r.String()
	spec.Window.From = readTimeOpt(r)
	spec.Window.To = readTimeOpt(r)
	if n := r.Count(1); n > 0 {
		spec.Collectors = make([]string, n)
		for i := range spec.Collectors {
			spec.Collectors[i] = r.String()
		}
	}
	if n := r.Count(1); n > 0 {
		spec.PeerAS = make([]uint32, n)
		for i := range spec.PeerAS {
			spec.PeerAS[i] = uint32(r.Uvarint())
		}
	}
	spec.PrefixRange = r.Prefix()
	spec.FromYear = int(r.Varint())
	spec.ToYear = int(r.Varint())
	spec.Collector = r.String()
	spec.Prefix = r.Prefix()
	spec.PeerAddr = r.Addr()
	spec.Path = r.String()
	if err := r.Err(); err != nil {
		return QuerySpec{}, fmt.Errorf("serve: decode query spec: %w", err)
	}
	if r.Remaining() != 0 {
		return QuerySpec{}, fmt.Errorf("serve: query spec has %d trailing bytes", r.Remaining())
	}
	return spec, nil
}

func appendPlanStats(dst []byte, p evstore.PlanStats) []byte {
	dst = wire.AppendUvarint(dst, uint64(p.Shards))
	dst = wire.AppendUvarint(dst, uint64(p.Partitions))
	dst = wire.AppendUvarint(dst, uint64(p.Merged))
	dst = wire.AppendUvarint(dst, uint64(p.Jumped))
	dst = wire.AppendUvarint(dst, uint64(p.Scanned))
	dst = wire.AppendUvarint(dst, uint64(p.Skipped))
	return dst
}

func readPlanStats(r *wire.Reader) evstore.PlanStats {
	var p evstore.PlanStats
	p.Shards = int(r.Uvarint())
	p.Partitions = int(r.Uvarint())
	p.Merged = int(r.Uvarint())
	p.Jumped = int(r.Uvarint())
	p.Scanned = int(r.Uvarint())
	p.Skipped = int(r.Uvarint())
	return p
}

func appendScanStats(dst []byte, s evstore.ScanStats) []byte {
	dst = wire.AppendUvarint(dst, uint64(s.Partitions))
	dst = wire.AppendUvarint(dst, uint64(s.PartitionsPruned))
	dst = wire.AppendUvarint(dst, uint64(s.Blocks))
	dst = wire.AppendUvarint(dst, uint64(s.BlocksPruned))
	dst = wire.AppendUvarint(dst, uint64(s.BlocksDecoded))
	dst = wire.AppendVarint(dst, s.BytesRead)
	dst = wire.AppendVarint(dst, s.BytesDecompressed)
	dst = wire.AppendUvarint(dst, uint64(s.BlocksPrefetched))
	// Length-prefixed per-codec split, so growing NumCodecs is a codec
	// change the reader detects rather than a silent misparse.
	dst = wire.AppendUvarint(dst, uint64(len(s.PerCodec)))
	for _, pc := range s.PerCodec {
		dst = wire.AppendUvarint(dst, uint64(pc.Blocks))
		dst = wire.AppendVarint(dst, pc.BytesRead)
		dst = wire.AppendVarint(dst, pc.BytesDecompressed)
	}
	dst = wire.AppendUvarint(dst, uint64(s.Events))
	return dst
}

func readScanStats(r *wire.Reader) evstore.ScanStats {
	var s evstore.ScanStats
	s.Partitions = int(r.Uvarint())
	s.PartitionsPruned = int(r.Uvarint())
	s.Blocks = int(r.Uvarint())
	s.BlocksPruned = int(r.Uvarint())
	s.BlocksDecoded = int(r.Uvarint())
	s.BytesRead = r.Varint()
	s.BytesDecompressed = r.Varint()
	s.BlocksPrefetched = int(r.Uvarint())
	if n := r.Count(1); r.Err() == nil && n != len(s.PerCodec) {
		r.Fail("serve: scan stats carry %d codec slots, want %d", n, len(s.PerCodec))
	} else {
		for i := 0; i < n && r.Err() == nil; i++ {
			s.PerCodec[i].Blocks = int(r.Uvarint())
			s.PerCodec[i].BytesRead = r.Varint()
			s.PerCodec[i].BytesDecompressed = r.Varint()
		}
	}
	s.Events = int(r.Uvarint())
	return s
}

// AppendStateEnvelope encodes an envelope for the wire.
func AppendStateEnvelope(dst []byte, env *StateEnvelope) []byte {
	dst = append(dst, envelopeMagic...)
	dst = wire.AppendString(dst, env.Backend)
	dst = wire.AppendUvarint(dst, env.Generation)
	dst = wire.AppendString(dst, env.Source)
	dst = wire.AppendVarint(dst, int64(env.Elapsed))
	dst = appendPlanStats(dst, env.Plan)
	dst = appendScanStats(dst, env.Scan)
	dst = wire.AppendUvarint(dst, uint64(env.Merges))
	dst = wire.AppendUvarint(dst, uint64(len(env.Keys)))
	for i, k := range env.Keys {
		dst = wire.AppendString(dst, k)
		dst = wire.AppendBytes(dst, env.States[i])
	}
	dst = wire.AppendUvarint(dst, uint64(len(env.Shards)))
	for _, p := range env.Shards {
		dst = wire.AppendString(dst, p.Backend)
		dst = wire.AppendUvarint(dst, p.Generation)
		dst = wire.AppendString(dst, p.Source)
		dst = wire.AppendVarint(dst, int64(p.Elapsed))
		dst = wire.AppendString(dst, p.Err)
	}
	return dst
}

// DecodeStateEnvelope decodes an AppendStateEnvelope message with the
// same strictness as DecodeQuerySpec.
func DecodeStateEnvelope(b []byte) (*StateEnvelope, error) {
	r := wire.NewReader(b)
	if string(r.Bytes(len(envelopeMagic))) != envelopeMagic {
		return nil, fmt.Errorf("serve: bad state-envelope magic")
	}
	env := &StateEnvelope{}
	env.Backend = r.String()
	env.Generation = r.Uvarint()
	env.Source = r.String()
	env.Elapsed = time.Duration(r.Varint())
	env.Plan = readPlanStats(r)
	env.Scan = readScanStats(r)
	env.Merges = int(r.Uvarint())
	if n := r.Count(1); n > 0 && r.Err() == nil {
		env.Keys = make([]string, 0, n)
		env.States = make([][]byte, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			env.Keys = append(env.Keys, r.String())
			st := r.Bytes(r.Count(1))
			env.States = append(env.States, append([]byte(nil), st...))
		}
	}
	if n := r.Count(1); n > 0 && r.Err() == nil {
		env.Shards = make([]ShardProvenance, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			var p ShardProvenance
			p.Backend = r.String()
			p.Generation = r.Uvarint()
			p.Source = r.String()
			p.Elapsed = time.Duration(r.Varint())
			p.Err = r.String()
			env.Shards = append(env.Shards, p)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("serve: decode state envelope: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("serve: state envelope has %d trailing bytes", r.Remaining())
	}
	return env, nil
}
