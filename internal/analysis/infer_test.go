package analysis

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/workload"
)

func TestInferPeerBehaviorOnBeaconData(t *testing.T) {
	ds := workload.GenerateBeacon(smallBeaconCfg())
	inferences := InferPeerBehavior(ds)
	if len(inferences) == 0 {
		t.Fatal("no inferences")
	}
	// Every peer session that announced anything is covered.
	if len(inferences) != len(ds.Peers) {
		t.Errorf("inferences = %d, peers = %d", len(inferences), len(ds.Peers))
	}
	// The beacon workload exercises the mechanisms strongly, so inference
	// should be near-perfect.
	acc := InferenceAccuracy(ds, inferences)
	if acc < 0.9 {
		t.Errorf("accuracy = %.2f, want >= 0.9", acc)
	}
	// All three classes are represented.
	seen := map[PeerBehavior]int{}
	for _, inf := range inferences {
		seen[inf.Behavior]++
		if inf.Announcements == 0 {
			t.Errorf("session %v: zero announcements", inf.Session)
		}
	}
	if seen[BehaviorPropagates] == 0 || seen[BehaviorCleansEgress] == 0 || seen[BehaviorQuiet] == 0 {
		t.Errorf("class coverage: %v", seen)
	}
}

func TestInferPeerBehaviorOnDayData(t *testing.T) {
	ds := smallDay()
	inferences := InferPeerBehavior(ds)
	acc := InferenceAccuracy(ds, inferences)
	// The wild-style day data is noisier than the beacon view; accuracy
	// must still be well above random guessing among three classes.
	if acc < 0.7 {
		t.Errorf("accuracy = %.2f, want >= 0.7", acc)
	}
}

func TestInferPeerBehaviorEvidence(t *testing.T) {
	ds := workload.GenerateBeacon(smallBeaconCfg())
	for _, inf := range InferPeerBehavior(ds) {
		switch inf.Behavior {
		case BehaviorPropagates:
			if inf.CommShare <= commShareThreshold {
				t.Errorf("%v: propagates with comm share %.2f", inf.Session, inf.CommShare)
			}
		case BehaviorCleansEgress:
			if inf.CommShare > commShareThreshold || inf.NNShare <= nnShareThreshold {
				t.Errorf("%v: cleans-egress with comm %.2f nn %.2f", inf.Session, inf.CommShare, inf.NNShare)
			}
		case BehaviorQuiet:
			if inf.CommShare > commShareThreshold {
				t.Errorf("%v: quiet with comm share %.2f", inf.Session, inf.CommShare)
			}
		}
	}
}

func TestInferenceAccuracyEmpty(t *testing.T) {
	ds := smallDay()
	if InferenceAccuracy(ds, nil) != 0 {
		t.Error("empty inference accuracy should be 0")
	}
}

func TestInferIngressLocations(t *testing.T) {
	cfg := smallBeaconCfg()
	ds := workload.GenerateBeacon(cfg)
	infs := InferIngressLocations(ds)
	if len(infs) == 0 {
		t.Fatal("no ingress inferences")
	}
	// Only transparent tagged peers leak locations; each leaks several
	// (steady + exploration pools).
	taggedTransparent := map[uint32]bool{}
	for _, p := range ds.Peers {
		if p.TaggedUpstream && p.Kind == workload.PeerTransparent {
			taggedTransparent[p.AS] = true
		}
	}
	for _, inf := range infs {
		if !taggedTransparent[inf.PeerAS] {
			t.Errorf("peer AS%d leaks locations but is not transparent+tagged", inf.PeerAS)
		}
		if inf.Locations < 2 {
			t.Errorf("peer AS%d: only %d locations (exploration should reveal more)", inf.PeerAS, inf.Locations)
		}
		if inf.Locations > cfg.SteadyLocations+cfg.WithdrawLocations+cfg.AnnounceExtraLocs {
			t.Errorf("peer AS%d: %d locations exceeds the generator's pool", inf.PeerAS, inf.Locations)
		}
	}
	// Sorted output.
	for i := 1; i < len(infs); i++ {
		if infs[i].PeerAS < infs[i-1].PeerAS {
			t.Fatal("output not sorted")
		}
	}
}

func TestBehaviorString(t *testing.T) {
	if BehaviorPropagates.String() != "propagates" ||
		BehaviorCleansEgress.String() != "cleans-egress" ||
		BehaviorQuiet.String() != "quiet" {
		t.Error("behavior strings")
	}
	if PeerBehavior(9).String() != "behavior(9)" {
		t.Error("unknown behavior string")
	}
}

func TestInferenceSessionsMatchClassifierSessions(t *testing.T) {
	ds := workload.GenerateBeacon(smallBeaconCfg())
	infs := InferPeerBehavior(ds)
	sessions := make(map[classify.SessionKey]bool)
	for _, e := range ds.Events {
		sessions[e.Session()] = true
	}
	for _, inf := range infs {
		if !sessions[inf.Session] {
			t.Errorf("inferred session %v never appeared in events", inf.Session)
		}
	}
}
