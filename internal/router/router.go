// Package router implements a simulated BGP speaker faithful enough to
// reproduce the paper's controlled experiments (§3): per-peer Adj-RIB-In
// with import policy, the RFC 4271 decision process, export with
// next-hop-self and AS prepending, egress policy, and vendor-specific
// duplicate-update behaviour.
package router

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/dampening"
	"repro/internal/netsim"
	"repro/internal/rib"
)

// Router is one BGP speaker.
type Router struct {
	Name     string
	AS       uint32
	ID       netip.Addr
	Behavior Behavior

	net        *Network
	peers      []*Peer
	locRIB     *rib.LocRIB
	originated map[netip.Prefix]*rib.Route
}

// Peer is one directed half of a BGP session on a router.
type Peer struct {
	Router *Router
	// Remote is the other half of the session.
	Remote *Peer

	LocalAddr  netip.Addr
	RemoteAddr netip.Addr
	RemoteAS   uint32
	IBGP       bool

	// Import runs on received routes before they enter the Adj-RIB-In.
	Import Policy
	// Export runs on routes after standard eBGP/iBGP export processing.
	Export Policy
	// NextHopSelf rewrites the next hop on iBGP export (always done on
	// eBGP export).
	NextHopSelf bool
	// MRAI is the minimum route advertisement interval per prefix (RFC
	// 4271 §9.2.1.1). Announcements inside the interval are deferred and
	// coalesced: only the latest state is advertised when the interval
	// expires. Withdrawals are never rate-limited. Zero disables it, as
	// the lab experiments require to observe every message.
	MRAI time.Duration
	// Dampening enables RFC 2439 route-flap dampening on routes received
	// from this peer. Nil disables it (the default; the lab experiments
	// must observe every flap).
	Dampening *dampening.Config

	adjIn   *rib.AdjIn
	adjOut  *rib.AdjOut
	up      bool
	delay   time.Duration
	lastAdv map[netip.Prefix]time.Time
	// pendingFlush maps a deferred prefix to its scheduled flush instant.
	// The scheduled closure only acts when its own expiry is still the
	// recorded one, so flushes cancelled by a session reset (or
	// superseded after re-establishment) can never fire stale.
	pendingFlush map[netip.Prefix]time.Time
	dampeners    map[netip.Prefix]*dampening.Dampener
	held         map[netip.Prefix]*rib.Route
}

// Up reports whether the session is established.
func (p *Peer) Up() bool { return p.up }

// AdjInLen exposes the number of routes held from this peer (for tests).
func (p *Peer) AdjInLen() int { return p.adjIn.Len() }

// Network owns the simulated routers, their sessions, and the installed
// message sink. Message observation is off by default: nothing is
// retained unless a Sink is installed, so long or large runs do not grow
// memory with traffic (the full-trace behaviour of early versions is
// available as TraceBuffer).
type Network struct {
	Engine *netsim.Engine

	routers map[string]*Router
	sink    Sink
	// Delay is the default propagation delay applied to new sessions.
	Delay time.Duration
}

// TracedMessage is one BGP message observed on a link, as a packet capture
// between two routers would record it.
type TracedMessage struct {
	Time     time.Time
	From, To string // router names
	Update   *bgp.Update
	Withdraw bool // convenience: true if the update only withdraws
}

// NewNetwork returns an empty network on a fresh engine starting at start.
func NewNetwork(start time.Time) *Network {
	return &Network{
		Engine:  netsim.NewEngine(start),
		routers: make(map[string]*Router),
		Delay:   10 * time.Millisecond,
	}
}

// AddRouter creates and registers a router.
func (n *Network) AddRouter(name string, as uint32, id netip.Addr, b Behavior) *Router {
	if _, dup := n.routers[name]; dup {
		panic(fmt.Sprintf("router: duplicate router name %q", name))
	}
	r := &Router{
		Name:       name,
		AS:         as,
		ID:         id,
		Behavior:   b,
		net:        n,
		locRIB:     rib.NewLocRIB(),
		originated: make(map[netip.Prefix]*rib.Route),
	}
	n.routers[name] = r
	return r
}

// Router returns a registered router by name, or nil.
func (n *Network) Router(name string) *Router { return n.routers[name] }

// SetSink installs the message sink (nil turns observation off). The
// sink sees every message from the next delivery on; already-recorded
// state in a previous sink is untouched.
func (n *Network) SetSink(s Sink) { n.sink = s }

// EnableTrace installs (or returns the already-installed) full
// TraceBuffer sink, restoring the classic capture-everything behaviour.
func (n *Network) EnableTrace() *TraceBuffer {
	if b, ok := n.sink.(*TraceBuffer); ok {
		return b
	}
	b := NewTraceBuffer()
	n.sink = b
	return b
}

// traceBuffer returns the installed TraceBuffer, or nil when none (or a
// different sink) is installed.
func (n *Network) traceBuffer() *TraceBuffer {
	b, _ := n.sink.(*TraceBuffer)
	return b
}

// Trace returns all messages captured by the installed TraceBuffer, in
// delivery order; nil when no TraceBuffer is installed.
func (n *Network) Trace() []TracedMessage {
	if b := n.traceBuffer(); b != nil {
		return b.Messages()
	}
	return nil
}

// ClearTrace discards the installed TraceBuffer's messages; experiments
// call this after convergence so only event-induced messages are counted.
func (n *Network) ClearTrace() {
	if b := n.traceBuffer(); b != nil {
		b.Clear()
	}
}

// TraceBetween filters the installed TraceBuffer to messages sent from
// one router to another.
func (n *Network) TraceBetween(from, to string) []TracedMessage {
	if b := n.traceBuffer(); b != nil {
		return b.Between(from, to)
	}
	return nil
}

// SessionConfig parameterizes Connect.
type SessionConfig struct {
	AAddr, BAddr     netip.Addr
	AImport, AExport Policy // policies on the A side
	BImport, BExport Policy
	ANextHopSelf     bool
	BNextHopSelf     bool
	AMRAI, BMRAI     time.Duration // per-side advertisement rate limits
	// ADampening / BDampening enable flap dampening on each side's
	// received routes.
	ADampening, BDampening *dampening.Config
	Delay                  time.Duration // zero means the network default
}

// Connect establishes a BGP session between two routers and returns the two
// peer halves (a's view, b's view). The session type (eBGP/iBGP) follows
// from the routers' AS numbers. Existing routes are exchanged immediately.
func (n *Network) Connect(a, b *Router, cfg SessionConfig) (*Peer, *Peer) {
	if cfg.Delay == 0 {
		cfg.Delay = n.Delay
	}
	ibgp := a.AS == b.AS
	pa := &Peer{
		Router: a, LocalAddr: cfg.AAddr, RemoteAddr: cfg.BAddr, RemoteAS: b.AS,
		IBGP: ibgp, Import: cfg.AImport, Export: cfg.AExport,
		NextHopSelf: cfg.ANextHopSelf, MRAI: cfg.AMRAI, Dampening: cfg.ADampening,
		adjIn: rib.NewAdjIn(), adjOut: rib.NewAdjOut(), up: true, delay: cfg.Delay,
		lastAdv: make(map[netip.Prefix]time.Time), pendingFlush: make(map[netip.Prefix]time.Time),
		dampeners: make(map[netip.Prefix]*dampening.Dampener), held: make(map[netip.Prefix]*rib.Route),
	}
	pb := &Peer{
		Router: b, LocalAddr: cfg.BAddr, RemoteAddr: cfg.AAddr, RemoteAS: a.AS,
		IBGP: ibgp, Import: cfg.BImport, Export: cfg.BExport,
		NextHopSelf: cfg.BNextHopSelf, MRAI: cfg.BMRAI, Dampening: cfg.BDampening,
		adjIn: rib.NewAdjIn(), adjOut: rib.NewAdjOut(), up: true, delay: cfg.Delay,
		lastAdv: make(map[netip.Prefix]time.Time), pendingFlush: make(map[netip.Prefix]time.Time),
		dampeners: make(map[netip.Prefix]*dampening.Dampener), held: make(map[netip.Prefix]*rib.Route),
	}
	pa.Remote, pb.Remote = pb, pa
	a.peers = append(a.peers, pa)
	b.peers = append(b.peers, pb)
	// Initial table exchange.
	for _, p := range a.locRIB.Prefixes() {
		a.exportPrefix(pa, p)
	}
	for _, p := range b.locRIB.Prefixes() {
		b.exportPrefix(pb, p)
	}
	return pa, pb
}

// SetSession brings the session between two named routers up or down,
// modelling a link failure. Taking it down clears both Adj-RIB-Ins and
// triggers reconvergence, exactly as the lab experiments flap Y1–Y2.
func (n *Network) SetSession(aName, bName string, up bool) error {
	a := n.routers[aName]
	if a == nil {
		return fmt.Errorf("router: unknown router %q", aName)
	}
	var pa *Peer
	for _, p := range a.peers {
		if p.Remote.Router.Name == bName {
			pa = p
			break
		}
	}
	if pa == nil {
		return fmt.Errorf("router: no session %s–%s", aName, bName)
	}
	pb := pa.Remote
	if pa.up == up {
		return nil
	}
	if !up {
		pa.up, pb.up = false, false
		affectedA := pa.adjIn.Clear()
		affectedB := pb.adjIn.Clear()
		// Forget what we advertised so re-establishment resends the table.
		for _, p := range pa.adjOut.Prefixes() {
			pa.adjOut.RemoveRecord(p)
		}
		for _, p := range pb.adjOut.Prefixes() {
			pb.adjOut.RemoveRecord(p)
		}
		// MRAI state dies with the session: a pending deferred flush must
		// not fire a stale (re-)advertisement after re-establishment, and
		// the re-established session's initial table exchange must not be
		// rate-limited by pre-reset advertisement times.
		clear(pa.pendingFlush)
		clear(pb.pendingFlush)
		clear(pa.lastAdv)
		clear(pb.lastAdv)
		for _, p := range affectedA {
			pa.Router.recompute(p)
		}
		for _, p := range affectedB {
			pb.Router.recompute(p)
		}
		return nil
	}
	pa.up, pb.up = true, true
	for _, p := range pa.Router.locRIB.Prefixes() {
		pa.Router.exportPrefix(pa, p)
	}
	for _, p := range pb.Router.locRIB.Prefixes() {
		pb.Router.exportPrefix(pb, p)
	}
	return nil
}

// Originate injects a locally originated route for prefix with the given
// communities, as the beacon origin Z1 does for p.
func (r *Router) Originate(prefix netip.Prefix, communities bgp.Communities) {
	route := &rib.Route{
		Prefix: prefix,
		Attrs: bgp.PathAttrs{
			Origin: bgp.OriginIGP,
			// Canonical may alias the caller's slice; the route lives on
			// in the RIB, so decouple it from later caller mutation.
			Communities: communities.Canonical().Clone(),
		},
		Local:        true,
		PeerRouterID: r.ID,
	}
	r.originated[prefix] = route
	r.recompute(prefix)
}

// WithdrawOriginated removes a locally originated route, propagating
// withdrawals.
func (r *Router) WithdrawOriginated(prefix netip.Prefix) {
	if _, ok := r.originated[prefix]; !ok {
		return
	}
	delete(r.originated, prefix)
	r.recompute(prefix)
}

// Best returns the router's current best route for prefix, or nil.
func (r *Router) Best(prefix netip.Prefix) *rib.Route { return r.locRIB.Best(prefix) }

// LocRIBLen returns the number of best routes held.
func (r *Router) LocRIBLen() int { return r.locRIB.Len() }

// Peers returns the router's sessions.
func (r *Router) Peers() []*Peer { return r.peers }

// recompute re-runs the decision process for prefix and, if the outcome
// changed, re-exports to every peer.
func (r *Router) recompute(prefix netip.Prefix) {
	candidates := make([]*rib.Route, 0, len(r.peers)+1)
	if local, ok := r.originated[prefix]; ok {
		candidates = append(candidates, local)
	}
	for _, p := range r.peers {
		if !p.up {
			continue
		}
		if route := p.adjIn.Get(prefix); route != nil {
			candidates = append(candidates, route)
		}
	}
	res := r.locRIB.Update(prefix, candidates)
	if !res.Changed {
		return
	}
	for _, p := range r.peers {
		r.exportPrefix(p, prefix)
	}
}

// exportPrefix recomputes the advertisement of prefix to one peer: sending
// an update, a withdrawal, a vendor-dependent duplicate, or nothing.
func (r *Router) exportPrefix(p *Peer, prefix netip.Prefix) {
	if !p.up {
		return
	}
	best := r.locRIB.Best(prefix)
	withdraw := func() {
		if p.adjOut.RemoveRecord(prefix) {
			r.send(p, &bgp.Update{Withdrawn: []netip.Prefix{prefix}})
		}
	}
	if best == nil {
		withdraw()
		return
	}
	// Split horizon: never advertise a route back to the session it was
	// learned on, and never reflect iBGP-learned routes to iBGP peers
	// (full-mesh rule; no route reflection in this model).
	if !best.Local && best.PeerAddr == p.RemoteAddr {
		withdraw()
		return
	}
	if best.FromIBGP && p.IBGP {
		withdraw()
		return
	}

	attrs := best.Attrs.Clone()
	if p.IBGP {
		if p.NextHopSelf || !attrs.NextHop.IsValid() {
			attrs.NextHop = p.LocalAddr
		}
		if !attrs.HasLocalPref {
			attrs.HasLocalPref = true
			attrs.LocalPref = rib.DefaultLocalPref
		}
	} else {
		attrs.ASPath = attrs.ASPath.Prepend(r.AS, 1)
		attrs.NextHop = p.LocalAddr
		// LOCAL_PREF is iBGP-only; MED is non-transitive and not propagated
		// onward to eBGP peers.
		attrs.HasLocalPref = false
		attrs.LocalPref = 0
		if !best.Local {
			attrs.HasMED = false
			attrs.MED = 0
		}
	}
	if !p.Export.Run(&attrs) {
		withdraw()
		return
	}

	if prev, had := p.adjOut.Advertised(prefix); had && attrs.Equal(prev) {
		if r.Behavior.SuppressDuplicates {
			return // Junos: identical outbound update withheld
		}
		// Cisco IOS / BIRD: the duplicate goes out anyway.
	}
	// MRAI gating: defer announcements falling inside the interval. The
	// deferred flush re-runs exportPrefix, so only the state current at
	// expiry is advertised (implicit coalescing).
	if p.MRAI > 0 {
		now := r.net.Engine.Now()
		if last, ok := p.lastAdv[prefix]; ok && now.Sub(last) < p.MRAI {
			if _, pending := p.pendingFlush[prefix]; !pending {
				expiry := last.Add(p.MRAI)
				p.pendingFlush[prefix] = expiry
				r.net.Engine.ScheduleAt(expiry, func() {
					if at, ok := p.pendingFlush[prefix]; !ok || !at.Equal(expiry) {
						return // cancelled by a session reset, or superseded
					}
					delete(p.pendingFlush, prefix)
					r.exportPrefix(p, prefix)
				})
			}
			return
		}
		p.lastAdv[prefix] = now
	}
	p.adjOut.Record(prefix, attrs)
	r.send(p, &bgp.Update{NLRI: []netip.Prefix{prefix}, Attrs: attrs})
}

// send schedules delivery of an update over the session.
func (r *Router) send(p *Peer, u *bgp.Update) {
	remote := p.Remote
	deliverAt := p.delay
	r.net.Engine.Schedule(deliverAt, func() {
		if !remote.up {
			return // session died in flight
		}
		if sink := r.net.sink; sink != nil {
			sink.Record(TracedMessage{
				Time:     r.net.Engine.Now(),
				From:     r.Name,
				To:       remote.Router.Name,
				Update:   u,
				Withdraw: u.IsWithdrawOnly(),
			})
		}
		remote.Router.receive(remote, u)
	})
}

// receive processes an update arriving on a session.
func (r *Router) receive(p *Peer, u *bgp.Update) {
	for _, prefix := range u.Withdrawn {
		if p.Dampening != nil {
			delete(p.held, prefix)
			r.dampener(p, prefix).RecordWithdraw(r.net.Engine.Now())
		}
		if p.adjIn.Remove(prefix) {
			r.recompute(prefix)
		}
	}
	if len(u.NLRI) == 0 {
		return
	}
	// eBGP loop prevention: drop paths containing our own AS.
	if !p.IBGP && u.Attrs.ASPath.Contains(r.AS) {
		return
	}
	for _, prefix := range u.NLRI {
		attrs := u.Attrs.Clone()
		if !p.Import.Run(&attrs) {
			if p.adjIn.Remove(prefix) {
				r.recompute(prefix)
			}
			continue
		}
		route := &rib.Route{
			Prefix:       prefix,
			Attrs:        attrs,
			PeerAddr:     p.RemoteAddr,
			PeerAS:       p.RemoteAS,
			FromIBGP:     p.IBGP,
			PeerRouterID: p.Remote.Router.ID,
		}
		if p.Dampening != nil && r.dampenRoute(p, route) {
			continue // suppressed: held for later reuse
		}
		if p.adjIn.Set(route) {
			r.recompute(prefix)
		}
	}
}

// dampener returns (creating if needed) the flap tracker for a prefix.
func (r *Router) dampener(p *Peer, prefix netip.Prefix) *dampening.Dampener {
	d := p.dampeners[prefix]
	if d == nil {
		d = dampening.New(*p.Dampening)
		p.dampeners[prefix] = d
	}
	return d
}

// dampenRoute applies RFC 2439 accounting to an arriving route. It returns
// true when the route is suppressed; the route is then parked in the held
// set and a reuse check is scheduled.
func (r *Router) dampenRoute(p *Peer, route *rib.Route) bool {
	now := r.net.Engine.Now()
	d := r.dampener(p, route.Prefix)
	// An announcement replacing existing state is a flap (implicit
	// withdraw); a fresh announcement is not penalized.
	if prev := p.adjIn.Get(route.Prefix); prev != nil && !prev.Attrs.Equal(route.Attrs) {
		d.RecordAttrChange(now)
	} else if _, wasHeld := p.held[route.Prefix]; wasHeld {
		d.RecordAttrChange(now)
	}
	if !d.Suppressed(now) {
		delete(p.held, route.Prefix)
		return false
	}
	p.held[route.Prefix] = route
	// The suppressed route must leave the RIB entirely.
	if p.adjIn.Remove(route.Prefix) {
		r.recompute(route.Prefix)
	}
	r.scheduleReuse(p, route.Prefix, d.ReuseAt(now))
	return true
}

// scheduleReuse arranges reinstatement of a held route once its penalty
// decays below the reuse threshold.
func (r *Router) scheduleReuse(p *Peer, prefix netip.Prefix, at time.Time) {
	r.net.Engine.ScheduleAt(at, func() {
		route, ok := p.held[prefix]
		if !ok || !p.up {
			return
		}
		now := r.net.Engine.Now()
		d := r.dampener(p, prefix)
		if d.Suppressed(now) {
			r.scheduleReuse(p, prefix, d.ReuseAt(now))
			return
		}
		delete(p.held, prefix)
		if p.adjIn.Set(route) {
			r.recompute(prefix)
		}
	})
}

// Run drives the network to quiescence, returning the number of events
// processed.
func (n *Network) Run() (int, error) { return n.Engine.Run(0) }
