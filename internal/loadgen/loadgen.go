// Package loadgen drives realistic query mixes against a running
// commservd daemon (single-node or coordinator) and reports latency
// percentiles, throughput, and answer-tier composition against an SLO.
//
// Two driving disciplines are supported. Closed-loop runs N workers
// that each issue the next request as soon as the last answers —
// throughput floats with server latency, which measures capacity.
// Open-loop fires requests on a Poisson arrival process at a fixed
// rate regardless of completions — latency under that rate includes
// queueing, which measures behavior at a target load (and, unlike
// closed-loop, does not coordinate away overload: slow answers pile up
// instead of slowing the offered load).
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Query is one weighted entry in a load mix. Path builds the request
// path+query (relative to the target base URL) for one issue; it may
// randomize parameters per call and must be safe for concurrent use
// with distinct rngs.
type Query struct {
	Name   string
	Weight int
	Path   func(r *rand.Rand) string
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL targets the daemon ("http://127.0.0.1:8714").
	BaseURL string
	// Client overrides the HTTP client (nil: a pooled default).
	Client *http.Client
	// Mix is the weighted query mix (required, non-empty).
	Mix []Query
	// Duration bounds the run (default 10s). The run also ends when
	// Requests is reached, if set.
	Duration time.Duration
	// Requests stops after this many issued requests (0: duration-only).
	Requests int
	// Concurrency is the closed-loop worker count (default 8). Ignored
	// when Rate sets an open-loop run.
	Concurrency int
	// Rate switches to open-loop: Poisson arrivals at this many
	// requests/second.
	Rate float64
	// Seed makes mix choices and arrival jitter reproducible (0: 1).
	Seed int64
	// WarmupFrac discards the first fraction of samples by time so
	// cold-start compute does not pollute steady-state percentiles
	// (default 0.1, clamp [0, 0.5]).
	WarmupFrac float64
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("loadgen: BaseURL required")
	}
	if len(c.Mix) == 0 {
		return c, fmt.Errorf("loadgen: empty query mix")
	}
	for _, q := range c.Mix {
		if q.Weight <= 0 || q.Path == nil {
			return c, fmt.Errorf("loadgen: mix entry %q needs positive weight and a Path func", q.Name)
		}
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WarmupFrac < 0 {
		c.WarmupFrac = 0
	} else if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.1
	} else if c.WarmupFrac > 0.5 {
		c.WarmupFrac = 0.5
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}}
	}
	return c, nil
}

// sample is one completed request.
type sample struct {
	mix     int
	offset  time.Duration // since run start, for warmup trimming
	latency time.Duration
	status  int
	tier    string
	err     bool
}

// Percentiles summarizes a latency distribution in milliseconds.
type Percentiles struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// QueryStats is one mix entry's slice of the report.
type QueryStats struct {
	Name     string      `json:"name"`
	Requests int         `json:"requests"`
	Errors   int         `json:"errors"`
	Latency  Percentiles `json:"latency"`
}

// Report is one run's machine-readable result.
type Report struct {
	Target       string         `json:"target"`
	Mode         string         `json:"mode"` // "closed" or "open"
	Concurrency  int            `json:"concurrency,omitempty"`
	RateHz       float64        `json:"rate_hz,omitempty"`
	DurationSec  float64        `json:"duration_sec"`
	Requests     int            `json:"requests"`
	Errors       int            `json:"errors"`
	Shed         int            `json:"shed"` // HTTP 429 responses
	ThroughputHz float64        `json:"throughput_hz"`
	Latency      Percentiles    `json:"latency"`
	Tiers        map[string]int `json:"tiers"`
	PerQuery     []QueryStats   `json:"per_query"`
	// Warmup is how many leading samples were trimmed before
	// percentile computation (they still count toward Requests).
	Warmup int `json:"warmup_trimmed"`
}

// Run drives the configured load until the duration elapses, the
// request budget is spent, or ctx is cancelled — cancellation ends the
// run cleanly with the samples collected so far.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	picker := newPicker(cfg.Mix)
	start := time.Now()
	var (
		mu      sync.Mutex
		samples []sample
		issued  int
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	// budget returns false once the request budget is spent.
	budget := func() bool {
		if cfg.Requests <= 0 {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		if issued >= cfg.Requests {
			cancel()
			return false
		}
		issued++
		return true
	}

	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: Poisson arrivals, one goroutine per in-flight
		// request — completions do not gate arrivals.
		wg.Add(1)
		go func() {
			defer wg.Done()
			arr := rand.New(rand.NewSource(cfg.Seed))
			seq := 0
			for ctx.Err() == nil && budget() {
				seq++
				rng := rand.New(rand.NewSource(cfg.Seed + int64(seq)*7919))
				wg.Add(1)
				go func() {
					defer wg.Done()
					record(issue(ctx, cfg, picker, rng, start))
				}()
				wait := time.Duration(arr.ExpFloat64() / cfg.Rate * float64(time.Second))
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
		}()
	} else {
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
				for ctx.Err() == nil && budget() {
					record(issue(ctx, cfg, picker, rng, start))
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildReport(cfg, samples, elapsed)
	return rep, nil
}

// issue sends one request picked from the mix and classifies the
// response by status and X-Comm-Tier.
func issue(ctx context.Context, cfg Config, p *picker, rng *rand.Rand, start time.Time) sample {
	mix := p.pick(rng)
	path := cfg.Mix[mix].Path(rng)
	s := sample{mix: mix, offset: time.Since(start)}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+path, nil)
	if err != nil {
		s.err = true
		return s
	}
	t0 := time.Now()
	resp, err := cfg.Client.Do(req)
	s.latency = time.Since(t0)
	if err != nil {
		// Context-cancelled issues at run end are not server errors.
		s.err = ctx.Err() == nil
		s.status = 0
		return s
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.status = resp.StatusCode
	s.tier = resp.Header.Get("X-Comm-Tier")
	if s.tier == "" {
		s.tier = "none"
	}
	s.err = resp.StatusCode >= 500
	return s
}

// picker is a cumulative-weight mix chooser.
type picker struct {
	cum   []int
	total int
}

func newPicker(mix []Query) *picker {
	p := &picker{cum: make([]int, len(mix))}
	for i, q := range mix {
		p.total += q.Weight
		p.cum[i] = p.total
	}
	return p
}

func (p *picker) pick(rng *rand.Rand) int {
	n := rng.Intn(p.total)
	for i, c := range p.cum {
		if n < c {
			return i
		}
	}
	return len(p.cum) - 1
}

func buildReport(cfg Config, samples []sample, elapsed time.Duration) *Report {
	rep := &Report{
		Target:      cfg.BaseURL,
		Mode:        "closed",
		Concurrency: cfg.Concurrency,
		DurationSec: elapsed.Seconds(),
		Requests:    len(samples),
		Tiers:       map[string]int{},
	}
	if cfg.Rate > 0 {
		rep.Mode, rep.RateHz, rep.Concurrency = "open", cfg.Rate, 0
	}
	warmupCut := time.Duration(float64(elapsed) * cfg.WarmupFrac)
	var kept []sample
	for _, s := range samples {
		if s.status == http.StatusTooManyRequests {
			rep.Shed++
		}
		if s.err {
			rep.Errors++
		}
		if s.tier != "" {
			rep.Tiers[s.tier]++
		}
		if s.offset >= warmupCut && !s.err && s.status < 400 && s.status != 0 {
			kept = append(kept, s)
		}
	}
	rep.Warmup = len(samples) - len(kept)
	rep.ThroughputHz = float64(len(samples)) / math.Max(elapsed.Seconds(), 1e-9)

	all := make([]time.Duration, 0, len(kept))
	perMix := make([][]time.Duration, len(cfg.Mix))
	perErr := make([]int, len(cfg.Mix))
	perReq := make([]int, len(cfg.Mix))
	for _, s := range samples {
		perReq[s.mix]++
		if s.err {
			perErr[s.mix]++
		}
	}
	for _, s := range kept {
		all = append(all, s.latency)
		perMix[s.mix] = append(perMix[s.mix], s.latency)
	}
	rep.Latency = percentiles(all)
	for i, q := range cfg.Mix {
		rep.PerQuery = append(rep.PerQuery, QueryStats{
			Name:     q.Name,
			Requests: perReq[i],
			Errors:   perErr[i],
			Latency:  percentiles(perMix[i]),
		})
	}
	return rep
}

func percentiles(ds []time.Duration) Percentiles {
	if len(ds) == 0 {
		return Percentiles{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(ds)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return float64(ds[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return Percentiles{
		P50Ms:  at(0.50),
		P90Ms:  at(0.90),
		P99Ms:  at(0.99),
		P999Ms: at(0.999),
		MaxMs:  float64(ds[len(ds)-1]) / float64(time.Millisecond),
		MeanMs: float64(sum) / float64(len(ds)) / float64(time.Millisecond),
	}
}

// ---------------------------------------------------------------------------
// SLO gating
// ---------------------------------------------------------------------------

// SLO is a set of thresholds a report must meet. Zero fields are
// unchecked.
type SLO struct {
	P50Ms           float64 `json:"p50_ms,omitempty"`
	P99Ms           float64 `json:"p99_ms,omitempty"`
	P999Ms          float64 `json:"p999_ms,omitempty"`
	MinThroughputHz float64 `json:"min_throughput_hz,omitempty"`
	MaxErrorRate    float64 `json:"max_error_rate,omitempty"`
}

// Check returns one violation string per missed threshold (empty:
// the report meets the SLO).
func (s SLO) Check(r *Report) []string {
	var v []string
	chk := func(limit, got float64, what string) {
		if limit > 0 && got > limit {
			v = append(v, fmt.Sprintf("%s %.3f over SLO %.3f", what, got, limit))
		}
	}
	chk(s.P50Ms, r.Latency.P50Ms, "p50_ms")
	chk(s.P99Ms, r.Latency.P99Ms, "p99_ms")
	chk(s.P999Ms, r.Latency.P999Ms, "p999_ms")
	if s.MinThroughputHz > 0 && r.ThroughputHz < s.MinThroughputHz {
		v = append(v, fmt.Sprintf("throughput_hz %.1f under SLO %.1f", r.ThroughputHz, s.MinThroughputHz))
	}
	if s.MaxErrorRate > 0 && r.Requests > 0 {
		rate := float64(r.Errors) / float64(r.Requests)
		if rate > s.MaxErrorRate {
			v = append(v, fmt.Sprintf("error_rate %.4f over SLO %.4f", rate, s.MaxErrorRate))
		}
	}
	return v
}

// Summary renders the report as a one-paragraph human summary.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %d requests in %.1fs (%.1f req/s), %d errors, %d shed\n",
		r.Mode, r.Target, r.Requests, r.DurationSec, r.ThroughputHz, r.Errors, r.Shed)
	fmt.Fprintf(&b, "latency ms: p50=%.2f p90=%.2f p99=%.2f p99.9=%.2f max=%.2f\n",
		r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.P999Ms, r.Latency.MaxMs)
	tiers := make([]string, 0, len(r.Tiers))
	for t := range r.Tiers {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	for _, t := range tiers {
		fmt.Fprintf(&b, "  tier %-14s %d\n", t, r.Tiers[t])
	}
	return b.String()
}
