package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Update is the parsed UPDATE message. IPv4 reachability uses the classic
// Withdrawn/NLRI fields; other families ride in Attrs.MPReach/MPUnreach.
type Update struct {
	Withdrawn []netip.Prefix // IPv4 withdrawals
	Attrs     PathAttrs
	NLRI      []netip.Prefix // IPv4 announcements
}

// Type implements Message.
func (*Update) Type() uint8 { return TypeUpdate }

func (u *Update) appendBody(dst []byte, opt MarshalOptions) ([]byte, error) {
	for _, p := range u.Withdrawn {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("bgp: IPv6 prefix %v in classic withdrawn field", p)
		}
	}
	for _, p := range u.NLRI {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("bgp: IPv6 prefix %v in classic NLRI field", p)
		}
	}

	var wd []byte
	for _, p := range u.Withdrawn {
		wd = AppendPrefix(wd, p)
	}
	if len(wd) > 0xFFFF {
		return nil, fmt.Errorf("bgp: withdrawn routes block too long: %d bytes", len(wd))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(wd)))
	dst = append(dst, wd...)

	var attrs []byte
	if u.hasAttrs() {
		var err error
		attrs, err = u.Attrs.appendPathAttrs(nil, opt)
		if err != nil {
			return nil, err
		}
	}
	if len(attrs) > 0xFFFF {
		return nil, fmt.Errorf("bgp: path attribute block too long: %d bytes", len(attrs))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)

	for _, p := range u.NLRI {
		dst = AppendPrefix(dst, p)
	}
	return dst, nil
}

func (u *Update) hasAttrs() bool {
	a := &u.Attrs
	return len(u.NLRI) > 0 || a.MPReach != nil || a.MPUnreach != nil ||
		a.ASPath != nil || a.NextHop.IsValid() || a.HasMED || a.HasLocalPref ||
		len(a.Communities) > 0 || len(a.LargeCommunities) > 0 ||
		a.AtomicAggregate || a.Aggregator != nil || len(a.Unknown) > 0
}

// DecodeUpdate parses an UPDATE body (without the 19-byte header).
func DecodeUpdate(b []byte, opt MarshalOptions) (*Update, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("bgp: UPDATE body shorter than 4 bytes")
	}
	wdLen := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+wdLen+2 {
		return nil, fmt.Errorf("bgp: UPDATE truncated in withdrawn routes")
	}
	u := &Update{}
	var err error
	if wdLen > 0 {
		u.Withdrawn, err = DecodePrefixes(b[2:2+wdLen], AFIIPv4)
		if err != nil {
			return nil, err
		}
	}
	rest := b[2+wdLen:]
	attrLen := int(binary.BigEndian.Uint16(rest[0:2]))
	if len(rest) < 2+attrLen {
		return nil, fmt.Errorf("bgp: UPDATE truncated in path attributes")
	}
	if attrLen > 0 {
		u.Attrs, err = decodePathAttrs(rest[2:2+attrLen], opt)
		if err != nil {
			return nil, err
		}
	}
	nlri := rest[2+attrLen:]
	if len(nlri) > 0 {
		u.NLRI, err = DecodePrefixes(nlri, AFIIPv4)
		if err != nil {
			return nil, err
		}
	}
	return u, nil
}

// Announced returns every announced prefix across address families.
func (u *Update) Announced() []netip.Prefix {
	out := append([]netip.Prefix(nil), u.NLRI...)
	if u.Attrs.MPReach != nil {
		out = append(out, u.Attrs.MPReach.NLRI...)
	}
	return out
}

// AllWithdrawn returns every withdrawn prefix across address families.
func (u *Update) AllWithdrawn() []netip.Prefix {
	out := append([]netip.Prefix(nil), u.Withdrawn...)
	if u.Attrs.MPUnreach != nil {
		out = append(out, u.Attrs.MPUnreach.Withdrawn...)
	}
	return out
}

// IsWithdrawOnly reports whether the update only withdraws routes.
func (u *Update) IsWithdrawOnly() bool {
	return len(u.Announced()) == 0 && len(u.AllWithdrawn()) > 0
}

// NextHopFor returns the next hop used for the given family.
func (u *Update) NextHopFor(afi uint16) netip.Addr {
	if afi == AFIIPv4 {
		return u.Attrs.NextHop
	}
	if u.Attrs.MPReach != nil && u.Attrs.MPReach.AFI == afi {
		return u.Attrs.MPReach.NextHop
	}
	return netip.Addr{}
}

// String renders a compact human-readable summary, useful in experiment
// transcripts.
func (u *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE")
	if wd := u.AllWithdrawn(); len(wd) > 0 {
		sb.WriteString(" withdraw=[")
		for i, p := range wd {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(p.String())
		}
		sb.WriteByte(']')
	}
	if ann := u.Announced(); len(ann) > 0 {
		sb.WriteString(" announce=[")
		for i, p := range ann {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(p.String())
		}
		sb.WriteString("] path=[")
		sb.WriteString(u.Attrs.ASPath.String())
		sb.WriteByte(']')
		if len(u.Attrs.Communities) > 0 {
			sb.WriteString(" comm=[")
			sb.WriteString(u.Attrs.Communities.Canonical().String())
			sb.WriteByte(']')
		}
		if u.Attrs.NextHop.IsValid() {
			sb.WriteString(" nh=")
			sb.WriteString(u.Attrs.NextHop.String())
		}
	}
	return sb.String()
}
