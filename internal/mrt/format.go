package mrt

import (
	"fmt"
	"strings"

	"repro/internal/bgp"
)

// Format renders one record in a bgpdump-like single-line-per-event style,
// for inspection tooling (cmd/mrtdump).
func Format(h Header, rec Record) string {
	ts := h.Time().UTC().Format("2006-01-02 15:04:05.000000")
	switch rec := rec.(type) {
	case *BGP4MPMessage:
		msg, err := rec.Decode()
		if err != nil {
			return fmt.Sprintf("%s|BGP4MP|AS%d|%v|<undecodable: %v>", ts, rec.PeerAS, rec.PeerAddr, err)
		}
		switch m := msg.(type) {
		case *bgp.Update:
			var sb strings.Builder
			for _, p := range m.AllWithdrawn() {
				fmt.Fprintf(&sb, "%s|W|%v|AS%d|%v\n", ts, p, rec.PeerAS, rec.PeerAddr)
			}
			for _, p := range m.Announced() {
				fmt.Fprintf(&sb, "%s|A|%v|AS%d|%v|%s|%s|%s\n",
					ts, p, rec.PeerAS, rec.PeerAddr,
					m.Attrs.ASPath, m.Attrs.Origin, m.Attrs.Communities.Canonical())
			}
			return strings.TrimRight(sb.String(), "\n")
		case *bgp.Keepalive:
			return fmt.Sprintf("%s|K|AS%d|%v", ts, rec.PeerAS, rec.PeerAddr)
		case *bgp.Open:
			return fmt.Sprintf("%s|O|AS%d|%v|hold=%d", ts, m.ASN, rec.PeerAddr, m.HoldTime)
		case *bgp.Notification:
			return fmt.Sprintf("%s|N|AS%d|%v|code=%d/%d", ts, rec.PeerAS, rec.PeerAddr, m.Code, m.Subcode)
		}
		return fmt.Sprintf("%s|?|AS%d|%v", ts, rec.PeerAS, rec.PeerAddr)
	case *BGP4MPStateChange:
		return fmt.Sprintf("%s|STATE|AS%d|%v|%d->%d", ts, rec.PeerAS, rec.PeerAddr, rec.OldState, rec.NewState)
	case *PeerIndexTable:
		return fmt.Sprintf("%s|PEER_INDEX|%s|%d peers", ts, rec.ViewName, len(rec.Peers))
	case *RIBUnicast:
		return fmt.Sprintf("%s|RIB|%v|%d entries", ts, rec.Prefix, len(rec.Entries))
	}
	return fmt.Sprintf("%s|unknown record", ts)
}
