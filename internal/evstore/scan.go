package evstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/classify"
	"repro/internal/stream"
	"repro/internal/wire"
)

// ScanStats counts what a scan read versus what pushdown skipped.
// Every field is a deterministic function of the store and query —
// never of timing — so per-shard stats summed over a parallel run
// equal the sequential scan's exactly.
type ScanStats struct {
	Partitions        int // partition files considered
	PartitionsPruned  int // skipped by name or footer summary, no block decoded
	Blocks            int // blocks in scanned partitions
	BlocksPruned      int // skipped by block summary
	BlocksDecoded     int
	BytesRead         int64 // stored (compressed) payload bytes read from disk
	BytesDecompressed int64 // uncompressed payload bytes decompressed and decoded
	// BlocksPrefetched counts blocks whose read+decompress ran on the
	// decode-ahead worker, overlapped with the previous block's decode
	// and classification; BlocksDecoded - BlocksPrefetched took the
	// synchronous path (single-matching-block partitions).
	BlocksPrefetched int
	// PerCodec splits the decoded-block I/O by block codec.
	PerCodec [NumCodecs]CodecScanStats
	Events   int // events yielded after the residual filter
}

// CodecScanStats is one codec's share of a scan's decoded blocks.
type CodecScanStats struct {
	Blocks            int
	BytesRead         int64
	BytesDecompressed int64
}

// Add accumulates another scan's stats — per-shard stats summed over a
// parallel run equal the sequential scan's.
func (s *ScanStats) Add(o ScanStats) {
	s.Partitions += o.Partitions
	s.PartitionsPruned += o.PartitionsPruned
	s.Blocks += o.Blocks
	s.BlocksPruned += o.BlocksPruned
	s.BlocksDecoded += o.BlocksDecoded
	s.BytesRead += o.BytesRead
	s.BytesDecompressed += o.BytesDecompressed
	s.BlocksPrefetched += o.BlocksPrefetched
	for c := range s.PerCodec {
		s.PerCodec[c].Blocks += o.PerCodec[c].Blocks
		s.PerCodec[c].BytesRead += o.PerCodec[c].BytesRead
		s.PerCodec[c].BytesDecompressed += o.PerCodec[c].BytesDecompressed
	}
	s.Events += o.Events
}

// countBlock records one decoded block.
func (s *ScanStats) countBlock(bm blockMeta, prefetched bool) {
	s.BlocksDecoded++
	s.BytesRead += int64(bm.clen)
	s.BytesDecompressed += int64(bm.ulen)
	if prefetched {
		s.BlocksPrefetched++
	}
	if bm.codec.valid() {
		pc := &s.PerCodec[bm.codec]
		pc.Blocks++
		pc.BytesRead += int64(bm.clen)
		pc.BytesDecompressed += int64(bm.ulen)
	}
}

// compiledQuery precomputes the pushdown predicates of a Query.
type compiledQuery struct {
	q                Query
	fromNano, toNano int64 // inclusive lower, exclusive upper
	collectors       map[string]bool
	sanitized        map[string]bool // sanitized collector names, for filename pruning
	peerAS           map[uint32]bool
	hasPrefix        bool
	loAddr, hiAddr   netip.Addr // address span of PrefixRange
	filterKey        string     // bloom probe, "" when unusable
}

func compileQuery(q Query) *compiledQuery {
	cq := &compiledQuery{q: q, fromNano: math.MinInt64, toNano: math.MaxInt64}
	if !q.Window.From.IsZero() {
		cq.fromNano = q.Window.From.UnixNano()
	}
	if !q.Window.To.IsZero() {
		cq.toNano = q.Window.To.UnixNano()
	}
	if len(q.Collectors) > 0 {
		cq.collectors = make(map[string]bool, len(q.Collectors))
		cq.sanitized = make(map[string]bool, len(q.Collectors))
		for _, c := range q.Collectors {
			cq.collectors[c] = true
			cq.sanitized[sanitizeCollector(c)] = true
		}
	}
	if len(q.PeerAS) > 0 {
		cq.peerAS = make(map[uint32]bool, len(q.PeerAS))
		for _, as := range q.PeerAS {
			cq.peerAS[as] = true
		}
	}
	if p := q.PrefixRange; p.IsValid() {
		cq.hasPrefix = true
		masked := p.Masked()
		cq.loAddr = masked.Addr()
		cq.hiAddr = lastAddr(masked)
		if fl := p.Bits() - p.Bits()%8; fl > 0 {
			cq.filterKey = prefixKey(p.Addr(), fl)
		}
	}
	return cq
}

// match is the per-event residual filter — Query.Match semantics over
// the precomputed nano bounds and collector/peer-AS sets, O(1) per
// event where the exported method scans the raw slices.
func (cq *compiledQuery) match(e classify.Event) bool {
	if n := e.Time.UnixNano(); n < cq.fromNano || n >= cq.toNano {
		return false
	}
	if cq.collectors != nil && !cq.collectors[e.Collector] {
		return false
	}
	if cq.peerAS != nil && !cq.peerAS[e.PeerAS] {
		return false
	}
	if cq.hasPrefix {
		if !e.Prefix.IsValid() ||
			e.Prefix.Bits() < cq.q.PrefixRange.Bits() ||
			!cq.q.PrefixRange.Contains(e.Prefix.Addr()) {
			return false
		}
	}
	return true
}

// lastAddr returns the highest address covered by a masked prefix.
func lastAddr(p netip.Prefix) netip.Addr {
	if p.Addr().Is4() {
		b := p.Addr().As4()
		for i := p.Bits(); i < 32; i++ {
			b[i/8] |= 1 << (7 - i%8)
		}
		return netip.AddrFrom4(b)
	}
	b := p.Addr().As16()
	for i := p.Bits(); i < 128; i++ {
		b[i/8] |= 1 << (7 - i%8)
	}
	return netip.AddrFrom16(b)
}

// matchSummary reports whether a block (or partition aggregate) summary
// may contain matching events. useFilter selects the bloom probe, which
// is only meaningful at block granularity.
func (cq *compiledQuery) matchSummary(s blockSummary, useFilter bool) bool {
	if s.count == 0 {
		return false
	}
	if s.tmax < cq.fromNano || s.tmin >= cq.toNano {
		return false
	}
	if cq.peerAS != nil {
		ok := false
		for _, as := range s.peerAS {
			if cq.peerAS[as] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if cq.hasPrefix {
		if !s.minAddr.IsValid() {
			return false // no valid prefixes in the block
		}
		if s.maxAddr.Compare(cq.loAddr) < 0 || s.minAddr.Compare(cq.hiAddr) > 0 {
			return false
		}
		if useFilter && cq.filterKey != "" && len(s.filter) > 0 &&
			!filterMaybeContains(s.filter, cq.filterKey) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Partition reading
// ---------------------------------------------------------------------------

// partition is one decoded partition index: header fields plus the
// footer's block directory. No block payload has been read.
type partition struct {
	path      string
	size      int64
	version   int // partition format version (1 = legacy deflate-only)
	collector string
	day       time.Time
	blocks    []blockMeta
	agg       blockSummary
}

// readPartition opens a partition file and parses its header and
// footer index.
func readPartition(path string) (*partition, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	p, err := parsePartition(f, path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return p, f, nil
}

func parsePartition(f *os.File, path string) (*partition, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(partitionMagicV1))+8 {
		return nil, fmt.Errorf("evstore: %s: too short for a partition", path)
	}

	var head [4 + 1 + 255 + binary.MaxVarintLen64]byte
	hn, err := f.ReadAt(head[:min(int64(len(head)), size)], 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	hr := wire.NewReader(head[:hn])
	var version int
	var footerMagic string
	switch string(hr.Bytes(4)) {
	case partitionMagicV1:
		version, footerMagic = 1, footerMagicV1
	case partitionMagicV2:
		version, footerMagic = 2, footerMagicV2
	default:
		return nil, fmt.Errorf("evstore: %s: bad partition magic", path)
	}
	nameLen := hr.Bytes(1)
	var collector string
	if hr.Err() == nil {
		collector = string(hr.Bytes(int(nameLen[0])))
	}
	dayUnix := hr.Varint()
	if err := hr.Err(); err != nil {
		return nil, fmt.Errorf("evstore: %s: %w", path, err)
	}

	var trailer [8]byte
	if _, err := f.ReadAt(trailer[:], size-8); err != nil {
		return nil, err
	}
	if string(trailer[4:]) != footerMagic {
		return nil, fmt.Errorf("evstore: %s: bad footer magic", path)
	}
	flen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	if flen < int64(len(footerMagic)) || flen > size-8 {
		return nil, fmt.Errorf("evstore: %s: bad footer length %d", path, flen)
	}
	footer := make([]byte, flen)
	if _, err := f.ReadAt(footer, size-8-flen); err != nil {
		return nil, err
	}
	fr := wire.NewReader(footer)
	if string(fr.Bytes(4)) != footerMagic {
		return nil, fmt.Errorf("evstore: %s: bad footer header", path)
	}
	nblocks := fr.Count(1)
	p := &partition{
		path:      path,
		size:      size,
		version:   version,
		collector: collector,
		day:       time.Unix(dayUnix, 0).UTC(),
		blocks:    make([]blockMeta, 0, nblocks),
	}
	for i := 0; i < nblocks; i++ {
		var b blockMeta
		b.offset = int64(fr.Uvarint())
		b.ulen = int(fr.Uvarint())
		b.clen = int(fr.Uvarint())
		if version >= 2 {
			cb := fr.Bytes(1)
			if fr.Err() == nil {
				b.codec = Codec(cb[0])
			}
		} else {
			b.codec = CodecDeflate
		}
		b.sum = readSummary(fr)
		if fr.Err() != nil {
			break
		}
		if b.offset < 0 || b.clen < 0 || b.offset+int64(b.clen) > size ||
			b.ulen < 0 || b.ulen > maxBlockEvents*64 {
			return nil, fmt.Errorf("evstore: %s: block %d out of bounds", path, i)
		}
		if !b.codec.valid() {
			return nil, fmt.Errorf("evstore: %s: block %d has unknown codec %d", path, i, b.codec)
		}
		p.blocks = append(p.blocks, b)
		p.agg.merge(b.sum)
	}
	if err := fr.Err(); err != nil {
		return nil, fmt.Errorf("evstore: %s: %w", path, err)
	}
	return p, nil
}

// blockReader reads, decompresses, and decodes blocks, reusing its
// buffers, the per-codec decompressor state, the batch decode scratch
// (global dictionary + column arrays), and the residual selector
// across calls — one per scan worker, so steady-state block decoding
// allocates nothing. Partitions with more than one matching block
// stream through its decode-ahead prefetcher instead of the
// synchronous path (see prefetch.go).
type blockReader struct {
	cbuf, ubuf []byte
	dec        blockDecompressor
	scratch    *decodeScratch
	slr        *selector
	pf         prefetcher
}

// readBlockPayload reads and decompresses one block's payload into the
// reused buffer; the slice is valid until the next call. This is the
// synchronous path; the prefetcher runs the same read+decompress on
// its worker.
func (br *blockReader) readBlockPayload(f *os.File, b blockMeta) ([]byte, error) {
	if cap(br.ubuf) < b.ulen {
		br.ubuf = make([]byte, b.ulen)
	}
	ubuf := br.ubuf[:b.ulen]
	if b.codec == CodecRaw {
		// Raw blocks skip the staging buffer: read straight into place.
		if b.clen != b.ulen {
			return nil, fmt.Errorf("evstore: raw block length %d, footer says %d", b.clen, b.ulen)
		}
		if _, err := f.ReadAt(ubuf, b.offset); err != nil {
			return nil, err
		}
		return ubuf, nil
	}
	if cap(br.cbuf) < b.clen {
		br.cbuf = make([]byte, b.clen)
	}
	cbuf := br.cbuf[:b.clen]
	if _, err := f.ReadAt(cbuf, b.offset); err != nil {
		return nil, err
	}
	if err := br.dec.decompress(b.codec, ubuf, cbuf); err != nil {
		return nil, err
	}
	return ubuf, nil
}

// ---------------------------------------------------------------------------
// Store listing and scanning
// ---------------------------------------------------------------------------

// storeEntry is one partition file with its filename-derived sort and
// prune keys (zero values when the name is foreign).
type storeEntry struct {
	path      string
	collector string // sanitized, from the filename
	dayUnix   int64
	seq       int
	parsed    bool
}

// listPartitions enumerates a store's partition files sorted by
// (collector, day, seq) — the order that keeps each collector's
// timeline contiguous and per-session event order intact.
func listPartitions(dir string) ([]storeEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+Extension))
	if err != nil {
		return nil, err
	}
	entries := make([]storeEntry, 0, len(paths))
	for _, p := range paths {
		e := storeEntry{path: p}
		if collector, day, seq, ok := parsePartitionName(filepath.Base(p)); ok {
			e.collector, e.dayUnix, e.seq, e.parsed = collector, day.Unix(), seq, true
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.collector != b.collector {
			return a.collector < b.collector
		}
		if a.dayUnix != b.dayUnix {
			return a.dayUnix < b.dayUnix
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.path < b.path
	})
	return entries, nil
}

// ErrNoPartitions is the sentinel wrapped by the shared empty-store
// error of Scan, Stat, and ScanShards; match with errors.Is. The
// serving tier maps it to "store not ready yet" (HTTP 503 / empty
// shard) rather than a hard failure.
var ErrNoPartitions = errors.New("evstore: no partitions")

// noPartitionsError is the shared empty-store error of Scan, Stat, and
// ScanShards.
func noPartitionsError(dir string) error {
	return fmt.Errorf("%w in %s", ErrNoPartitions, dir)
}

// pruneByName applies the filename-level pushdown: collector and
// day-window checks that skip a partition without opening it.
func (cq *compiledQuery) pruneByName(e storeEntry) bool {
	if !e.parsed {
		return false
	}
	if cq.sanitized != nil && !cq.sanitized[e.collector] {
		return true
	}
	dayStartNano := e.dayUnix * int64(time.Second)
	dayEndNano := dayStartNano + int64(24*time.Hour)
	if dayEndNano <= cq.fromNano || dayStartNano >= cq.toNano {
		return true
	}
	return false
}

// Scan returns a source over the store's events matching q, in
// (collector, day, seq, ingest) order. Pushdown skips partitions and
// blocks whose summaries cannot match; a final Query.Match filter makes
// the result exact. Errors are reported via *errp (first error wins,
// may be nil to ignore) and end the stream, like pipeline sources. The
// source is replayable: each range re-reads the store.
func Scan(dir string, q Query, errp *error) stream.EventSource {
	return ScanWithStats(dir, q, errp, nil)
}

// ScanWithStats is Scan with pushdown accounting: if st is non-nil it
// is reset and filled while the returned source is consumed.
func ScanWithStats(dir string, q Query, errp *error, st *ScanStats) stream.EventSource {
	return ScanContext(context.Background(), dir, q, errp, st)
}

// ScanContext is ScanWithStats with cancellation: when ctx is
// cancelled the scan stops at the next block boundary and reports
// ctx's error via *errp — how the serving daemon aborts scans whose
// client has gone away.
func ScanContext(ctx context.Context, dir string, q Query, errp *error, st *ScanStats) stream.EventSource {
	return func(yield func(classify.Event) bool) {
		if st != nil {
			*st = ScanStats{}
		}
		fail := func(err error) {
			if errp != nil && *errp == nil {
				*errp = err
			}
		}
		entries, err := listPartitions(dir)
		if err != nil {
			fail(err)
			return
		}
		if len(entries) == 0 {
			fail(noPartitionsError(dir))
			return
		}
		cq := compileQuery(q)
		var br blockReader
		defer br.release()
		if _, err := scanEntries(ctx, entries, cq, &br, st, yield); err != nil {
			fail(err)
		}
	}
}

// scanEntries streams the matching events of a partition list through
// one blockReader, applying the name-level prune and per-partition
// scan; more reports whether the consumer wants to continue.
func scanEntries(ctx context.Context, entries []storeEntry, cq *compiledQuery, br *blockReader, st *ScanStats, yield func(classify.Event) bool) (more bool, err error) {
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if st != nil {
			st.Partitions++
		}
		if cq.pruneByName(e) {
			if st != nil {
				st.PartitionsPruned++
			}
			continue
		}
		more, err := scanPartition(ctx, e.path, cq, br, st, yield)
		if err != nil {
			return false, err
		}
		if !more {
			return false, nil
		}
	}
	return true, nil
}

// scanPartition streams one partition's matching events; more reports
// whether the consumer wants to continue. Cancellation is honoured at
// block boundaries: a cancelled ctx never interrupts the decode of a
// block already in flight. The events are materialized from the batch
// kernel; their slice fields alias the reader's scan-lifetime
// dictionary and stay valid after the scan.
func scanPartition(ctx context.Context, path string, cq *compiledQuery, br *blockReader, st *ScanStats, yield func(classify.Event) bool) (more bool, err error) {
	return scanPartitionBatch(ctx, path, cq, br, st, classify.ProjAll, func(b *classify.Batch, sel []int32) bool {
		for _, si := range sel {
			if !yield(b.Event(int(si))) {
				return false
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Store inspection
// ---------------------------------------------------------------------------

// BlockInfo describes one block for inspection tools.
type BlockInfo struct {
	Offset           int64
	Compressed       int
	Uncompressed     int
	Codec            Codec
	Events           int
	TimeMin, TimeMax time.Time
	PeerAS           []uint32
	FilterBytes      int
}

// PartitionInfo describes one partition file.
type PartitionInfo struct {
	Path      string
	Collector string
	Day       time.Time
	Seq       int
	SizeBytes int64
	// Codec names the partition's block codec — "mixed" when blocks
	// differ (raw-fallback blocks inside an lz partition, say).
	Codec string
	// StoredBytes and RawBytes sum the blocks' compressed and
	// uncompressed payload sizes; their ratio is the partition's
	// effective compression.
	StoredBytes int64
	RawBytes    int64
	Events      int
	TimeMin     time.Time
	TimeMax     time.Time
	PeerAS      []uint32 // distinct, ascending
	Blocks      []BlockInfo
}

// StatPartition reads one partition's index without decoding blocks.
func StatPartition(path string) (PartitionInfo, error) {
	p, f, err := readPartition(path)
	if err != nil {
		return PartitionInfo{}, err
	}
	f.Close()
	_, _, seq, _ := parsePartitionName(filepath.Base(path))
	info := PartitionInfo{
		Path:      path,
		Collector: p.collector,
		Day:       p.day,
		Seq:       seq,
		SizeBytes: p.size,
		Events:    p.agg.count,
		PeerAS:    p.agg.peerAS,
	}
	if p.agg.count > 0 {
		info.TimeMin = time.Unix(0, p.agg.tmin).UTC()
		info.TimeMax = time.Unix(0, p.agg.tmax).UTC()
	}
	for i, b := range p.blocks {
		info.Blocks = append(info.Blocks, BlockInfo{
			Offset:       b.offset,
			Compressed:   b.clen,
			Uncompressed: b.ulen,
			Codec:        b.codec,
			Events:       b.sum.count,
			TimeMin:      time.Unix(0, b.sum.tmin).UTC(),
			TimeMax:      time.Unix(0, b.sum.tmax).UTC(),
			PeerAS:       b.sum.peerAS,
			FilterBytes:  len(b.sum.filter),
		})
		info.StoredBytes += int64(b.clen)
		info.RawBytes += int64(b.ulen)
		switch {
		case i == 0:
			info.Codec = b.codec.String()
		case info.Codec != b.codec.String():
			info.Codec = "mixed"
		}
	}
	return info, nil
}

// Stat reads every partition index in the store, sorted like Scan.
func Stat(dir string) ([]PartitionInfo, error) {
	entries, err := listPartitions(dir)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, noPartitionsError(dir)
	}
	infos := make([]PartitionInfo, 0, len(entries))
	for _, e := range entries {
		info, err := StatPartition(e.path)
		if err != nil {
			return nil, err
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// IsStoreDir reports whether dir contains at least one partition file.
func IsStoreDir(dir string) bool {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+Extension))
	return err == nil && len(paths) > 0
}

// PartitionSource streams one partition file's events matching q, for
// inspectors that take explicit file arguments (cmd/mrtdump).
func PartitionSource(path string, q Query, errp *error) stream.EventSource {
	return func(yield func(classify.Event) bool) {
		cq := compileQuery(q)
		var br blockReader
		defer br.release()
		if _, err := scanPartition(context.Background(), path, cq, &br, nil, yield); err != nil {
			if errp != nil && *errp == nil {
				*errp = err
			}
		}
	}
}
