// Package bgp implements the BGP-4 message model and wire codec used by the
// rest of the repository: message framing (RFC 4271), path attributes
// including AS_PATH with 2- and 4-octet AS number encodings (RFC 6793),
// standard communities (RFC 1997), large communities (RFC 8092), and
// multiprotocol reachability attributes (RFC 4760) for IPv6 NLRI.
//
// The codec follows the DecodeFromBytes/SerializeTo idiom: decoding never
// retains the input slice, serialization appends to a caller-provided buffer,
// and every length field is validated before use.
package bgp
