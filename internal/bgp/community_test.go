package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommunityParts(t *testing.T) {
	c := NewCommunity(3356, 901)
	if c.ASN() != 3356 {
		t.Errorf("ASN() = %d, want 3356", c.ASN())
	}
	if c.Value() != 901 {
		t.Errorf("Value() = %d, want 901", c.Value())
	}
	if c.String() != "3356:901" {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCommunityRoundTripProperty(t *testing.T) {
	f := func(asn, value uint16) bool {
		c := NewCommunity(asn, value)
		return c.ASN() == asn && c.Value() == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCommunity(t *testing.T) {
	tests := []struct {
		in   string
		want Community
		err  bool
	}{
		{"3356:901", NewCommunity(3356, 901), false},
		{"0:0", 0, false},
		{"65535:65535", NewCommunity(65535, 65535), false},
		{"no-export", CommunityNoExport, false},
		{"NO-EXPORT", CommunityNoExport, false},
		{"blackhole", CommunityBlackhole, false},
		{"no-advertise", CommunityNoAdvertise, false},
		{"no-export-subconfed", CommunityNoExportSubconfed, false},
		{"65536:1", 0, true},
		{"1:65536", 0, true},
		{"junk", 0, true},
		{"1:2:3", 0, true},
		{"", 0, true},
		{"-1:5", 0, true},
	}
	for _, tc := range tests {
		got, err := ParseCommunity(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseCommunity(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCommunity(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCommunity(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseCommunityStringInverse(t *testing.T) {
	f := func(v uint32) bool {
		c := Community(v)
		got, err := ParseCommunity(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWellKnownCommunities(t *testing.T) {
	if !CommunityNoExport.WellKnown() {
		t.Error("no-export should be well-known")
	}
	if !CommunityBlackhole.WellKnown() {
		t.Error("blackhole should be well-known")
	}
	if NewCommunity(3356, 901).WellKnown() {
		t.Error("3356:901 should not be well-known")
	}
	if CommunityBlackhole.ASN() != 65535 || CommunityBlackhole.Value() != 666 {
		t.Errorf("blackhole = %d:%d, want 65535:666", CommunityBlackhole.ASN(), CommunityBlackhole.Value())
	}
}

func TestCommunitiesCanonical(t *testing.T) {
	cs := Communities{5, 3, 5, 1, 3}
	got := cs.Canonical()
	want := Communities{1, 3, 5}
	if !got.Equal(want) {
		t.Errorf("Canonical() = %v, want %v", got, want)
	}
	// Original unchanged.
	if cs[0] != 5 {
		t.Error("Canonical mutated its receiver")
	}
	if Communities(nil).Canonical() != nil {
		t.Error("Canonical(nil) should be nil")
	}
}

func TestCommunitiesCanonicalIdempotentProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		cs := make(Communities, len(vals))
		for i, v := range vals {
			cs[i] = Community(v)
		}
		once := cs.Canonical()
		twice := once.Canonical()
		return once.Equal(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommunitiesCanonicalSortedUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30)
		cs := make(Communities, n)
		for i := range cs {
			cs[i] = Community(rng.Uint32() % 1000) // force duplicates
		}
		can := cs.Canonical()
		for i := 1; i < len(can); i++ {
			if can[i] <= can[i-1] {
				t.Fatalf("trial %d: canonical not strictly increasing: %v", trial, can)
			}
		}
		for _, c := range cs {
			if !can.Contains(c) {
				t.Fatalf("trial %d: canonical lost member %v", trial, c)
			}
		}
	}
}

func TestCommunitiesEqualNilEmpty(t *testing.T) {
	if !Communities(nil).Equal(Communities{}) {
		t.Error("nil and empty community sets must compare equal")
	}
	if (Communities{1}).Equal(Communities{2}) {
		t.Error("distinct sets compared equal")
	}
	if (Communities{1}).Equal(Communities{1, 2}) {
		t.Error("different-length sets compared equal")
	}
}

func TestCommunitiesWithWithout(t *testing.T) {
	cs := Communities{NewCommunity(100, 1), NewCommunity(200, 2)}
	added := cs.With(NewCommunity(150, 5))
	if len(added) != 3 || !added.Contains(NewCommunity(150, 5)) {
		t.Errorf("With: got %v", added)
	}
	if len(cs) != 2 {
		t.Error("With mutated receiver")
	}
	removed := added.Without(func(c Community) bool { return c.ASN() == 150 })
	if len(removed) != 2 || removed.Contains(NewCommunity(150, 5)) {
		t.Errorf("Without: got %v", removed)
	}
	// Without everything yields empty.
	none := added.Without(func(Community) bool { return true })
	if len(none) != 0 {
		t.Errorf("Without(all): got %v", none)
	}
}

func TestCommunitiesKeyDistinguishes(t *testing.T) {
	a := Communities{NewCommunity(3356, 901)}.Canonical()
	b := Communities{NewCommunity(3356, 902)}.Canonical()
	c := Communities{NewCommunity(3356, 901), NewCommunity(3356, 2)}.Canonical()
	if a.Key() == b.Key() {
		t.Error("distinct singleton sets share a key")
	}
	if a.Key() == c.Key() {
		t.Error("subset and superset share a key")
	}
	if a.Key() != (Communities{NewCommunity(3356, 901)}).Canonical().Key() {
		t.Error("equal sets should share a key")
	}
	if Communities(nil).Key() != "" {
		t.Errorf("nil key = %q", Communities(nil).Key())
	}
}

func TestCommunitiesKeyInjectiveProperty(t *testing.T) {
	f := func(a, b []uint32) bool {
		ca := make(Communities, len(a))
		for i, v := range a {
			ca[i] = Community(v)
		}
		cb := make(Communities, len(b))
		for i, v := range b {
			cb[i] = Community(v)
		}
		ka, kb := ca.Canonical().Key(), cb.Canonical().Key()
		eq := ca.Canonical().Equal(cb.Canonical())
		return (ka == kb) == eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeCommunityString(t *testing.T) {
	lc := LargeCommunity{Global: 64512, Local1: 1, Local2: 2}
	if lc.String() != "64512:1:2" {
		t.Errorf("String() = %q", lc.String())
	}
	parsed, err := ParseLargeCommunity("64512:1:2")
	if err != nil {
		t.Fatal(err)
	}
	if parsed != lc {
		t.Errorf("parse mismatch: %v", parsed)
	}
	if _, err := ParseLargeCommunity("1:2"); err == nil {
		t.Error("want error for two fields")
	}
	if _, err := ParseLargeCommunity("a:b:c"); err == nil {
		t.Error("want error for non-numeric")
	}
	if _, err := ParseLargeCommunity("4294967296:1:2"); err == nil {
		t.Error("want error for overflow")
	}
}

func TestLargeCommunitiesCanonical(t *testing.T) {
	ls := LargeCommunities{
		{2, 0, 0}, {1, 5, 0}, {1, 2, 9}, {1, 2, 3}, {1, 2, 3},
	}
	can := ls.Canonical()
	want := LargeCommunities{{1, 2, 3}, {1, 2, 9}, {1, 5, 0}, {2, 0, 0}}
	if !can.Equal(want) {
		t.Errorf("Canonical() = %v, want %v", can, want)
	}
}

func TestLargeCommunityLessTotalOrder(t *testing.T) {
	f := func(a, b LargeCommunity) bool {
		// Exactly one of <, >, == holds.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommunitiesCanonicalAliasingContract(t *testing.T) {
	// Canonical documents that already-canonical input is returned as-is,
	// ALIASING the input — the result must be treated as immutable. Pin
	// the aliasing (so the doc stays honest) and that Clone decouples.
	cs := Communities{1, 3, 5}
	got := cs.Canonical()
	if &got[0] != &cs[0] {
		t.Error("Canonical on canonical input should alias (doc contract changed?)")
	}
	cl := got.Clone()
	if &cl[0] == &cs[0] {
		t.Error("Clone did not copy")
	}
	cl[0] = 99
	if cs[0] != 1 {
		t.Error("mutating the Clone reached the original")
	}
	// Non-canonical input yields a fresh slice: safe to mutate.
	messy := Communities{5, 3, 5, 1}
	fresh := messy.Canonical()
	fresh[0] = 77
	if messy[0] != 5 || messy[3] != 1 {
		t.Errorf("Canonical of messy input aliased it: %v", messy)
	}
}

func TestLargeCommunitiesCanonicalAliasingContract(t *testing.T) {
	ls := LargeCommunities{{1, 1, 1}, {2, 2, 2}}
	got := ls.Canonical()
	if &got[0] != &ls[0] {
		t.Error("Canonical on canonical input should alias, matching Communities")
	}
	messy := LargeCommunities{{2, 2, 2}, {1, 1, 1}, {2, 2, 2}}
	fresh := messy.Canonical()
	if len(fresh) != 2 || !fresh[0].Less(fresh[1]) {
		t.Errorf("Canonical(%v) = %v, want sorted unique", messy, fresh)
	}
	fresh[0] = LargeCommunity{9, 9, 9}
	if messy[1] != (LargeCommunity{1, 1, 1}) {
		t.Errorf("Canonical of messy input aliased it: %v", messy)
	}
}
