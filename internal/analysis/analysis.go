// Package analysis computes the paper's tables and figures from normalized
// event streams: the dataset overview (Table 1), announcement-type shares
// (Table 2), the longitudinal type series (Figure 2), per-session type
// mixes (Figure 3), per-path cumulative series (Figures 4/5), and the
// revealed-community attribution (Figure 6).
//
// Every analysis is a mergeable accumulator (Analyzer, see engine.go):
// Observe folds classified events in, Merge combines shard accumulators,
// Finish produces the table or figure. RunAll answers any number of
// questions in ONE classification pass over a stream.EventSource, and the
// same analyzers run shard-parallel via stream.ParallelRun or
// evstore.ScanParallel. The historical *Stream functions are thin
// wrappers (one analyzer, one pass); the *Dataset-taking functions
// stream a materialized workload.Dataset.
package analysis

import (
	"net/netip"
	"strconv"
	"time"
	"unsafe"

	"repro/internal/beacon"
	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Table1 is the d_mar20 overview (paper Table 1).
type Table1 struct {
	PrefixesV4 int
	PrefixesV6 int
	ASes       int
	Sessions   int
	Peers      int

	Announcements   int
	WithCommunities int
	// UniqueCommunities counts distinct 16-bit-encoded (RFC 1997) community
	// values across all announcements (paper: "uniq. 16 bits").
	UniqueCommunities int
	UniqueASPaths     int
	Withdrawals       int
}

// table1Accum incrementally builds Table 1 from in-window events.
type table1Accum struct {
	t1       Table1
	v4, v6   map[netip.Prefix]struct{}
	ases     map[uint32]struct{}
	sessions map[classify.SessionKey]struct{}
	peers    map[uint32]struct{}
	comms    map[bgp.Community]struct{}
	paths    map[string]struct{}
	// pathKey is the reusable scratch for the paths-set key: the exact
	// ASPath.String() bytes, rebuilt per event without allocating.
	// Inserted keys are copied into keyArena and stored as string views
	// over it — chunked arena growth instead of one heap string per
	// unique path (a day-scale store has thousands).
	pathKey  []byte
	keyArena []byte
	// lastSession/lastPrefix short-circuit the set inserts for the
	// common per-session-ordered inputs (stream.Concat producers, store
	// scans), where long runs of events share a session.
	lastSession classify.SessionKey
	haveSession bool
	lastPeer    uint32
	lastPrefix  netip.Prefix
	havePrefix  bool
}

func newTable1Accum() *table1Accum {
	return &table1Accum{
		v4:       make(map[netip.Prefix]struct{}),
		v6:       make(map[netip.Prefix]struct{}),
		ases:     make(map[uint32]struct{}),
		sessions: make(map[classify.SessionKey]struct{}),
		peers:    make(map[uint32]struct{}),
		comms:    make(map[bgp.Community]struct{}),
		paths:    make(map[string]struct{}),
	}
}

func (a *table1Accum) observe(e classify.Event) {
	if session := e.Session(); !a.haveSession || session != a.lastSession {
		a.sessions[session] = struct{}{}
		a.peers[e.PeerAS] = struct{}{}
		a.lastSession, a.lastPeer, a.haveSession = session, e.PeerAS, true
	} else if e.PeerAS != a.lastPeer {
		a.peers[e.PeerAS] = struct{}{}
		a.lastPeer = e.PeerAS
	}
	if !a.havePrefix || e.Prefix != a.lastPrefix {
		if e.Prefix.Addr().Is4() {
			a.v4[e.Prefix] = struct{}{}
		} else {
			a.v6[e.Prefix] = struct{}{}
		}
		a.lastPrefix, a.havePrefix = e.Prefix, true
	}
	if e.Withdraw {
		a.t1.Withdrawals++
		return
	}
	a.t1.Announcements++
	if len(e.Communities) > 0 {
		a.t1.WithCommunities++
		for _, c := range e.Communities {
			a.comms[c] = struct{}{}
		}
	}
	a.pathKey = appendPathKey(a.pathKey[:0], e.ASPath)
	if _, ok := a.paths[string(a.pathKey)]; !ok {
		a.paths[a.internPathKey()] = struct{}{}
		// A path-set miss is the only time this path's ASNs can be new:
		// a known path already contributed its ASes.
		for _, seg := range e.ASPath {
			for _, as := range seg.ASNs {
				a.ases[as] = struct{}{}
			}
		}
	}
}

// internPathKey copies the rendered pathKey scratch into the key
// arena and returns a string view over the copy, for insertion into
// the paths set. The arena chunk is abandoned (never rewound) when
// exhausted, so issued views stay stable; snapshots copy the bytes
// out, so mixed arena and heap keys coexist freely after a Restore
// or Merge.
func (a *table1Accum) internPathKey() string {
	n := len(a.pathKey)
	if n == 0 {
		return ""
	}
	if cap(a.keyArena)-len(a.keyArena) < n {
		a.keyArena = make([]byte, 0, max(1<<15, n))
	}
	l := len(a.keyArena)
	a.keyArena = append(a.keyArena, a.pathKey...)
	return unsafe.String(&a.keyArena[l], n)
}

// appendPathKey renders p exactly like bgp.ASPath.String into dst —
// the hot-path form that reuses the caller's buffer instead of
// allocating a string per event.
func appendPathKey(dst []byte, p bgp.ASPath) []byte {
	for i, s := range p {
		if i > 0 {
			dst = append(dst, ' ')
		}
		if s.Type == bgp.SegmentSet {
			dst = append(dst, '{')
		}
		for j, a := range s.ASNs {
			if j > 0 {
				if s.Type == bgp.SegmentSet {
					dst = append(dst, ',')
				} else {
					dst = append(dst, ' ')
				}
			}
			dst = strconv.AppendUint(dst, uint64(a), 10)
		}
		if s.Type == bgp.SegmentSet {
			dst = append(dst, '}')
		}
	}
	return dst
}

func (a *table1Accum) finish() Table1 {
	a.t1.PrefixesV4 = len(a.v4)
	a.t1.PrefixesV6 = len(a.v6)
	a.t1.ASes = len(a.ases)
	a.t1.Sessions = len(a.sessions)
	a.t1.Peers = len(a.peers)
	a.t1.UniqueCommunities = len(a.comms)
	a.t1.UniqueASPaths = len(a.paths)
	return a.t1
}

// runPlain drives analyzers that ignore the classification result
// (Table 1, Figure 6, the ingress/geo inferences) without paying for a
// classifier state map: every in-window event is observed with the zero
// Result.
func runPlain(src stream.EventSource, inWindow func(classify.Event) bool, analyzers ...Analyzer) {
	for e := range src {
		if inWindow != nil && !inWindow(e) {
			continue
		}
		for _, a := range analyzers {
			a.Observe(classify.Result{}, e)
		}
	}
}

// ComputeTable1Stream scans a source's in-window events in one pass
// (inWindow nil counts everything).
func ComputeTable1Stream(src stream.EventSource, inWindow func(classify.Event) bool) Table1 {
	a := NewTable1()
	runPlain(src, inWindow, a)
	return a.Table1()
}

// ComputeTable1 scans the dataset's in-window events.
func ComputeTable1(ds *workload.Dataset) Table1 {
	return ComputeTable1Stream(ds.Source(), ds.CountingWindow)
}

// Report computes Table 1 and the Table 2 type counts in one combined
// pass over the stream — the full §4–§5 measurement on archive-backed
// sources that can only be read once.
func Report(src stream.EventSource, inWindow func(classify.Event) bool) (Table1, classify.Counts) {
	t1 := NewTable1()
	counts := NewCounts()
	RunAll(src, inWindow, t1, counts)
	return t1.Table1(), counts.Counts
}

// ClassifyDataset runs the classifier over all events in order (warm-up
// events seed stream state) and tallies only in-window events — the
// Table 2 computation. Equivalent to stream.Classify over the dataset.
func ClassifyDataset(ds *workload.Dataset) classify.Counts {
	return stream.Classify(ds.Source(), ds.CountingWindow)
}

// Figure2Row is one day of the longitudinal type series.
type Figure2Row struct {
	Year   int
	Counts classify.Counts
}

// Figure2Series generates and classifies one synthetic day per year over
// [fromYear, toYear], the scaled-down analogue of Figure 2's quarterly
// series. Years are independent (each has its own generators and
// classifier), so they run on a bounded worker pool; rows come back in
// year order regardless of completion order.
func Figure2Series(fromYear, toYear int) []Figure2Row {
	return Figure2SeriesWorkers(fromYear, toYear, 0)
}

// Figure2SeriesWorkers is Figure2Series with an explicit pool size
// (<= 0 uses GOMAXPROCS; 1 is strictly sequential).
func Figure2SeriesWorkers(fromYear, toYear, workers int) []Figure2Row {
	n := toYear - fromYear + 1
	if n <= 0 {
		return nil
	}
	rows := make([]Figure2Row, n)
	stream.ForEachIndexed(n, workers, func(i int) {
		y := fromYear + i
		cfg := workload.HistoricalDayConfig(y)
		_, sources := workload.DaySources(cfg)
		counts := stream.Classify(stream.Concat(sources...), cfg.InWindow)
		rows[i] = Figure2Row{Year: y, Counts: counts}
	})
	return rows
}

// SessionMix is one bar of Figure 3: the announcement-type mix one session
// observed for one beacon prefix.
type SessionMix struct {
	Session classify.SessionKey
	PeerAS  uint32
	Counts  classify.Counts
}

// Total returns the session's announcement count.
func (s SessionMix) Total() int { return s.Counts.Announcements() }

// Figure3PerSessionStream classifies a source and returns, for one
// collector and prefix, each session's type mix sorted by descending
// announcement count (the paper's stacked bars for 84.205.64.0/24 at
// rrc00). The source must preserve per-session event order.
func Figure3PerSessionStream(src stream.EventSource, inWindow func(classify.Event) bool, collector string, prefix netip.Prefix) []SessionMix {
	a := NewSessionMix(collector, prefix)
	RunAll(src, inWindow, a)
	return a.Mixes()
}

// Figure3PerSession is Figure3PerSessionStream over a materialized dataset.
func Figure3PerSession(ds *workload.Dataset, collector string, prefix netip.Prefix) []SessionMix {
	return Figure3PerSessionStream(ds.Source(), ds.CountingWindow, collector, prefix)
}

// CumPoint is one classified announcement on a (session, prefix, path)
// stream.
type CumPoint struct {
	Time time.Time
	Type classify.Type
}

// CumSeries is the Figure 4/5 data: announcements over the day for one
// prefix via one AS path on one session, plus the withdrawal instants
// (the vertical lines in the figures).
type CumSeries struct {
	Points      []CumPoint
	Withdrawals []time.Time
}

// CumulativeByPathStream classifies a source and extracts the
// announcements of one session and prefix whose AS path matches pathStr.
func CumulativeByPathStream(src stream.EventSource, inWindow func(classify.Event) bool, session classify.SessionKey, prefix netip.Prefix, pathStr string) CumSeries {
	a := NewCumulative(session, prefix, pathStr)
	RunAll(src, inWindow, a)
	return a.Series()
}

// CumulativeByPath is CumulativeByPathStream over a materialized dataset.
func CumulativeByPath(ds *workload.Dataset, session classify.SessionKey, prefix netip.Prefix, pathStr string) CumSeries {
	return CumulativeByPathStream(ds.Source(), ds.CountingWindow, session, prefix, pathStr)
}

// TypeCounts tallies the series by type.
func (c CumSeries) TypeCounts() classify.Counts {
	var counts classify.Counts
	for _, p := range c.Points {
		counts.Add(classify.Result{Type: p.Type})
	}
	return counts
}

// RevealedForStream runs the Figure 6 attribution over a beacon source.
func RevealedForStream(src stream.EventSource, inWindow func(classify.Event) bool, sched beacon.Schedule) beacon.RevealedSummary {
	a := NewRevealed(sched)
	runPlain(src, inWindow, a)
	return a.Summary()
}

// RevealedForDataset runs the Figure 6 attribution over a beacon dataset.
func RevealedForDataset(ds *workload.Dataset, sched beacon.Schedule) beacon.RevealedSummary {
	return RevealedForStream(ds.Source(), ds.CountingWindow, sched)
}

// Figure6Row is one year of the revealed-information series.
type Figure6Row struct {
	Year    int
	Summary beacon.RevealedSummary
}

// Figure6Series generates beacon update streams per year and attributes
// their community reveals, one independent year per pool worker.
func Figure6Series(fromYear, toYear int) []Figure6Row {
	return Figure6SeriesWorkers(fromYear, toYear, 0)
}

// Figure6SeriesWorkers is Figure6Series with an explicit pool size
// (<= 0 uses GOMAXPROCS; 1 is strictly sequential).
func Figure6SeriesWorkers(fromYear, toYear, workers int) []Figure6Row {
	n := toYear - fromYear + 1
	if n <= 0 {
		return nil
	}
	rows := make([]Figure6Row, n)
	stream.ForEachIndexed(n, workers, func(i int) {
		y := fromYear + i
		cfg := workload.HistoricalBeaconConfig(y)
		_, sources := workload.BeaconSources(cfg)
		summary := RevealedForStream(stream.Concat(sources...), cfg.InWindow, cfg.Schedule)
		rows[i] = Figure6Row{Year: y, Summary: summary}
	})
	return rows
}

// BeaconSubsetStream filters a source to the RIPE beacon prefixes, the
// paper's d_beacon selection from d_hist.
func BeaconSubsetStream(src stream.EventSource) stream.EventSource {
	return stream.Filter(src, func(e classify.Event) bool {
		return beacon.IsBeaconPrefix(e.Prefix)
	})
}

// BeaconSubset filters a dataset to the RIPE beacon prefixes.
func BeaconSubset(ds *workload.Dataset) *workload.Dataset {
	return &workload.Dataset{
		Day:    ds.Day,
		Peers:  ds.Peers,
		Events: stream.Collect(BeaconSubsetStream(ds.Source())),
	}
}

// Figure2QuarterRow is one quarterly sample of the longitudinal series.
type Figure2QuarterRow struct {
	Year    int
	Quarter int // 0-3: Mar/Jun/Sep/Dec 15
	Counts  classify.Counts
}

// Figure2SeriesQuarterly reproduces the paper's actual §4 sampling: one
// day every three months across the year range (Figure 2's x axis),
// each sampled day generated and classified on a bounded worker pool.
func Figure2SeriesQuarterly(fromYear, toYear int) []Figure2QuarterRow {
	return Figure2SeriesQuarterlyWorkers(fromYear, toYear, 0)
}

// Figure2SeriesQuarterlyWorkers is Figure2SeriesQuarterly with an
// explicit pool size (<= 0 uses GOMAXPROCS; 1 is strictly sequential).
func Figure2SeriesQuarterlyWorkers(fromYear, toYear, workers int) []Figure2QuarterRow {
	n := 4 * (toYear - fromYear + 1)
	if n <= 0 {
		return nil
	}
	rows := make([]Figure2QuarterRow, n)
	stream.ForEachIndexed(n, workers, func(i int) {
		y, q := fromYear+i/4, i%4
		cfg := workload.HistoricalQuarterConfig(y, q)
		_, sources := workload.DaySources(cfg)
		counts := stream.Classify(stream.Concat(sources...), cfg.InWindow)
		rows[i] = Figure2QuarterRow{Year: y, Quarter: q, Counts: counts}
	})
	return rows
}
