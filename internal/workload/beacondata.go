package workload

import (
	"math/rand"
	"time"

	"repro/internal/beacon"
	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/stream"
)

// BeaconConfig parameterizes the d_beacon generator: updates for the RIPE
// beacon prefixes as observed across many collector sessions over one day.
type BeaconConfig struct {
	Seed int64
	Day  time.Time

	// Collectors and PeersPerCollector size the observation fabric. Every
	// beacon prefix propagates Internet-wide, so each session carries
	// every beacon (the paper sees 15 beacons across 577 sessions on 34
	// collectors).
	Collectors        int
	PeersPerCollector int

	// TaggedFrac, CleanEgressFrac, CleanIngressFrac: as in DayConfig.
	TaggedFrac       float64
	CleanEgressFrac  float64
	CleanIngressFrac float64

	// Schedule is the beacon announce/withdraw pattern.
	Schedule beacon.Schedule

	// MeanExploration is the mean number of extra exploration
	// announcements per transparent session and withdrawal phase (the
	// Figure 4 nc bursts: "starting with a pc update, followed by multiple
	// nc's"). MeanCleanerDups is the analogue for egress-cleaning peers
	// (the Figure 5 nn bursts).
	MeanExploration float64
	MeanCleanerDups float64

	// Location pools control the Figure 6 attribution. Steady locations
	// appear in announcement-phase First announcements only; withdraw
	// locations are reached during path exploration; announce-extra
	// locations appear in post-announcement convergence. AmbiguousProb is
	// the chance an announce-extra draws from the withdraw pool instead,
	// making that attribute ambiguous.
	SteadyLocations   int
	WithdrawLocations int
	AnnounceExtraLocs int
	AnnounceExtraProb float64
	AmbiguousProb     float64
	PrependToggleProb float64
}

// DefaultBeaconConfig returns the March-15-2020 d_beacon configuration,
// tuned so the classified type mix matches Table 2's d_beacon column
// (pc 44.6%, pn 29.9%, nc 13.8%, nn 11.2%) and the Figure 6 withdrawal
// reveal ratio sits near the paper's 62%.
func DefaultBeaconConfig(day time.Time) BeaconConfig {
	return BeaconConfig{
		Seed:              1265420,
		Day:               day,
		Collectors:        12,
		PeersPerCollector: 16,
		TaggedFrac:        0.75,
		CleanEgressFrac:   0.18,
		CleanIngressFrac:  0.05,
		Schedule:          beacon.RIPE,
		MeanExploration:   0.7,
		MeanCleanerDups:   1.6,
		SteadyLocations:   5,
		WithdrawLocations: 72,
		AnnounceExtraLocs: 8,
		AnnounceExtraProb: 0.2,
		AmbiguousProb:     0.4,
		PrependToggleProb: 0.01,
	}
}

// HistoricalBeaconConfig scales the beacon fabric to a past year for the
// Figure 6 longitudinal series: sessions and community adoption grow, the
// withdrawal-phase reveal ratio stays ≈ 60%.
func HistoricalBeaconConfig(year int) BeaconConfig {
	if year < 2010 {
		year = 2010
	}
	if year > 2020 {
		year = 2020
	}
	frac := float64(year-2010) / 10.0
	cfg := DefaultBeaconConfig(time.Date(year, 3, 15, 0, 0, 0, 0, time.UTC))
	cfg.Seed = int64(year)*100 + 42
	cfg.PeersPerCollector = int(float64(cfg.PeersPerCollector) * (0.5 + 0.5*frac))
	if cfg.PeersPerCollector < 3 {
		cfg.PeersPerCollector = 3
	}
	cfg.TaggedFrac = 0.40 + 0.35*frac
	cfg.MeanExploration = 0.3 + 0.4*frac
	// Scale the location pools with the observation fabric so the
	// withdrawal reveal ratio stays near 60% across the decade (Figure 6's
	// stable ratio): fewer sessions reach fewer distinct exploration
	// locations and sample proportionally fewer announce-phase extras.
	cfg.WithdrawLocations = int(24 + 48*frac)
	cfg.AnnounceExtraLocs = int(3 + 5*frac)
	cfg.AmbiguousProb = 0.4 + 0.25*(1-frac)
	return cfg
}

// beaconStream generates one (session, beacon prefix) day.
type beaconStream struct {
	cfg    BeaconConfig
	peer   Peer
	bcn    beacon.Beacon
	tagged bool

	primary bgp.ASPath
	backup  bgp.ASPath
	// steadyLoc indexes the session's usual ingress location; exploration
	// draws from the wider pool.
	steadyLoc int

	out *[]classify.Event
}

func (s *beaconStream) emit(t time.Time, path bgp.ASPath, comms bgp.Communities) {
	*s.out = append(*s.out, classify.Event{
		Time:        t,
		Collector:   s.peer.Collector,
		PeerAS:      s.peer.AS,
		PeerAddr:    s.peer.Addr,
		Prefix:      s.bcn.Prefix,
		ASPath:      path,
		Communities: comms,
	})
}

func (s *beaconStream) emitWithdraw(t time.Time) {
	*s.out = append(*s.out, classify.Event{
		Time:      t,
		Collector: s.peer.Collector,
		PeerAS:    s.peer.AS,
		PeerAddr:  s.peer.Addr,
		Prefix:    s.bcn.Prefix,
		Withdraw:  true,
	})
}

// comms returns the community attribute visible at the collector for an
// ingress location, honouring the peer's cleaning behaviour.
func (s *beaconStream) comms(rng *rand.Rand, loc int) bgp.Communities {
	if !s.tagged {
		return nil
	}
	set := geoCommunitySet(rng, s.peer.UpstreamAS, loc)
	switch s.peer.Kind {
	case PeerCleansEgress, PeerCleansIngress:
		return nil
	default:
		return set
	}
}

// GenerateBeacon synthesizes one day of beacon updates, materialized and
// globally time-ordered — the compatibility wrapper over BeaconSources.
// As in GenerateDay, collect-then-stable-sort costs one session slice of
// extra peak memory and matches stream.Merge's output exactly.
func GenerateBeacon(cfg BeaconConfig) *Dataset {
	peers, sources := BeaconSources(cfg)
	events := stream.Collect(stream.Concat(sources...))
	sortEvents(events)
	return &Dataset{Day: cfg.Day, Peers: peers, Events: events}
}

// InWindow reports whether an event falls inside the configured measured
// day, mirroring DayConfig.InWindow for streaming consumers.
func (c BeaconConfig) InWindow(e classify.Event) bool {
	return inDay(c.Day, e)
}

// beaconPeerEvents generates one peer session's day across all beacon
// prefixes, time-sorted. As with dayPeerEvents, per-stream RNGs are keyed
// by (beacon, peer) indices so generation order never affects results.
func beaconPeerEvents(cfg BeaconConfig, peer Peer, peerIdx int, beacons []beacon.Beacon, schedule []beacon.ScheduledEvent) []classify.Event {
	transitAlt := []uint32{701, 7018, 3320, 6762, 9002}
	var events []classify.Event
	for bi, bcn := range beacons {
		rng := streamRNG(cfg.Seed, uint64(bi), uint64(peerIdx), 0xBEAC)
		s := &beaconStream{
			cfg:       cfg,
			peer:      peer,
			bcn:       bcn,
			tagged:    peer.TaggedUpstream,
			steadyLoc: rng.Intn(cfg.SteadyLocations),
			out:       &events,
		}
		up2 := transitAlt[rng.Intn(len(transitAlt))]
		mid := uint32(30000 + rng.Intn(3000))
		s.primary = bgp.NewASPath(peer.AS, peer.UpstreamAS, mid, bcn.OriginAS)
		s.backup = bgp.NewASPath(peer.AS, up2, peer.UpstreamAS, bcn.OriginAS)
		s.run(rng, schedule)
	}
	sortEvents(events)
	return events
}

// run walks the schedule: each announcement phase re-announces the beacon;
// each withdrawal phase triggers path exploration ending in a global
// withdrawal.
func (s *beaconStream) run(rng *rand.Rand, schedule []beacon.ScheduledEvent) {
	prepended := false
	path := func() bgp.ASPath {
		if prepended {
			return s.primary.Prepend(s.peer.AS, 2)
		}
		return s.primary
	}
	for _, ev := range schedule {
		// Propagation jitter within the attribution window.
		jitter := time.Duration(rng.Int63n(int64(3 * time.Minute)))
		t := ev.At.Add(time.Second + jitter)
		if !ev.Withdraw {
			// Announcement phase: the beacon reappears on the primary path
			// with the steady community set. The stream state was cleared
			// by the previous withdrawal, so this is a First (pc or pn).
			s.emit(t, path(), s.comms(rng, s.steadyLoc))
			// Occasionally the announcement converges through one extra
			// community rotation (§6: 17% of attributes revealed during
			// announcement phases).
			if s.tagged && s.peer.Kind == PeerTransparent && rng.Float64() < s.cfg.AnnounceExtraProb {
				t = t.Add(time.Duration(5+rng.Intn(40)) * time.Second)
				s.emit(t, path(), s.comms(rng, s.announceExtraLoc(rng)))
			}
			// Rare origin prepending toggles: the xn/xc residue of Table 2.
			if rng.Float64() < s.cfg.PrependToggleProb {
				prepended = !prepended
				t = t.Add(time.Duration(10+rng.Intn(60)) * time.Second)
				s.emit(t, path(), s.comms(rng, s.steadyLoc))
			}
			continue
		}
		// Withdrawal phase: path exploration. The session first learns the
		// backup route (pc/pn), then deeper alternatives reveal rotating
		// geo communities (nc for transparent peers, nn for egress
		// cleaners), and finally the route is withdrawn globally.
		s.emit(t, s.backup, s.comms(rng, s.withdrawLoc(rng)))
		mean := s.cfg.MeanExploration
		if s.peer.Kind == PeerCleansEgress {
			mean = s.cfg.MeanCleanerDups
		}
		k := poisson(rng, mean)
		for i := 0; i < k; i++ {
			t = t.Add(time.Duration(2+rng.Intn(25)) * time.Second)
			switch {
			case s.tagged && s.peer.Kind == PeerTransparent:
				s.emit(t, s.backup, s.comms(rng, s.withdrawLoc(rng)))
			case s.tagged && s.peer.Kind == PeerCleansEgress:
				s.emit(t, s.backup, nil) // Figure 5: nn duplicates
			case !s.tagged && rng.Float64() < 0.25:
				s.emit(t, s.backup, nil) // plain duplicate
			}
		}
		t = t.Add(time.Duration(5+rng.Intn(30)) * time.Second)
		s.emitWithdraw(t)
	}
}

// withdrawLoc draws an ingress location from the exploration pool, which
// only path exploration reaches.
func (s *beaconStream) withdrawLoc(rng *rand.Rand) int {
	return s.cfg.SteadyLocations + rng.Intn(s.cfg.WithdrawLocations)
}

// announceExtraLoc draws a location for post-announcement convergence:
// usually from a dedicated pool, sometimes (AmbiguousProb) from the
// withdraw pool, which makes that attribute ambiguous in the Figure 6
// attribution.
func (s *beaconStream) announceExtraLoc(rng *rand.Rand) int {
	if rng.Float64() < s.cfg.AmbiguousProb {
		return s.withdrawLoc(rng)
	}
	return s.cfg.SteadyLocations + s.cfg.WithdrawLocations + rng.Intn(s.cfg.AnnounceExtraLocs)
}
