package pipeline

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/mrt"
)

// RIBEvents converts a TABLE_DUMP_V2 snapshot stream into one synthetic
// announcement event per (peer, prefix) RIB entry, timestamped at the
// snapshot instant. Feeding these to a classifier before the day's update
// archive seeds every stream's previous-announcement state, so the first
// real update of the day classifies against the RIB rather than as a
// stream opener — the standard bview + updates bootstrap.
func RIBEvents(collector string, r *mrt.Reader) ([]classify.Event, error) {
	var peers []mrt.Peer
	var out []classify.Event
	err := r.Walk(func(h mrt.Header, rec mrt.Record) error {
		switch rec := rec.(type) {
		case *mrt.PeerIndexTable:
			peers = rec.Peers
		case *mrt.RIBUnicast:
			for _, entry := range rec.Entries {
				if int(entry.PeerIndex) >= len(peers) {
					return fmt.Errorf("pipeline: RIB entry references peer index %d of %d",
						entry.PeerIndex, len(peers))
				}
				peer := peers[entry.PeerIndex]
				out = append(out, classify.Event{
					Time:        h.Time(),
					Collector:   collector,
					PeerAS:      peer.AS,
					PeerAddr:    peer.Addr,
					Prefix:      rec.Prefix,
					ASPath:      entry.Attrs.ASPath,
					Communities: entry.Attrs.Communities.Canonical(),
					HasMED:      entry.Attrs.HasMED,
					MED:         entry.Attrs.MED,
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SeedClassifier feeds RIB snapshot events into cl, discarding the
// (First) classifications, and returns the number of streams seeded.
func SeedClassifier(cl *classify.Classifier, events []classify.Event) int {
	n := 0
	seen := make(map[string]bool)
	for _, e := range events {
		if _, ok := cl.Observe(e); ok {
			key := e.Collector + "|" + e.PeerAddr.String() + "|" + e.Prefix.String()
			if !seen[key] {
				seen[key] = true
				n++
			}
		}
	}
	return n
}

// PrimeClock records the snapshot time as the collector's last-seen
// timestamp so same-second disambiguation continues monotonically across
// the bview/updates boundary.
func (n *Normalizer) PrimeClock(collector string, events []classify.Event) {
	for _, e := range events {
		if last, ok := n.lastTime[collector]; !ok || e.Time.After(last) {
			n.lastTime[collector] = e.Time
		}
	}
}
