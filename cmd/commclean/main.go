// Command commclean is the end-to-end measurement pipeline (§4–§5): it
// streams per-collector MRT archives (or lazily generated synthetic days)
// through the cleaning/normalization steps, classifies every announcement,
// and prints the Table 1 overview and Table 2 type shares — all in a
// single pass without materializing the event stream.
//
// Usage:
//
//	commclean [-in DIR] [-year 2020] [-days N] [-routeservers AS1,AS2,...]
//
// Without -in, a synthetic d_mar20-like day is generated on the fly;
// -days N streams N consecutive synthetic days back to back (a range far
// larger than would fit in memory materialized).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/stream"
	"repro/internal/textplot"
	"repro/internal/workload"
)

func main() {
	in := flag.String("in", "", "directory of <collector>.updates.mrt files; empty generates a synthetic day")
	year := flag.Int("year", 2020, "year for the synthetic dataset")
	days := flag.Int("days", 1, "number of consecutive synthetic days to stream")
	rsList := flag.String("routeservers", "", "comma-separated route-server peer ASNs (for -in mode)")
	flag.Parse()

	var counts classify.Counts
	var table1 analysis.Table1
	if *in == "" {
		cfg := workload.HistoricalDayConfig(*year)
		if *days > 1 {
			// Multi-day: day k+1 is generated only after day k has been
			// consumed, so the footprint stays one session-day.
			src := workload.MultiDaySource(cfg, *days)
			from, to := cfg.Day, cfg.Day.Add(time.Duration(*days)*24*time.Hour)
			table1, counts = analysis.Report(src, func(e classify.Event) bool {
				return !e.Time.Before(from) && e.Time.Before(to)
			})
		} else {
			_, sources := workload.DaySources(cfg)
			table1, counts = analysis.Report(stream.Concat(sources...), cfg.InWindow)
		}
	} else {
		var err error
		counts, table1, err = runPipeline(*in, *rsList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "commclean: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Println("Table 1 — dataset overview:")
	fmt.Print(textplot.Table([]string{"metric", "value"}, [][]string{
		{"IPv4 prefixes", strconv.Itoa(table1.PrefixesV4)},
		{"IPv6 prefixes", strconv.Itoa(table1.PrefixesV6)},
		{"ASes", strconv.Itoa(table1.ASes)},
		{"Sessions", strconv.Itoa(table1.Sessions)},
		{"Peers", strconv.Itoa(table1.Peers)},
		{"Announcements", strconv.Itoa(table1.Announcements)},
		{"  w/ communities", strconv.Itoa(table1.WithCommunities)},
		{"  uniq. 16-bit comms", strconv.Itoa(table1.UniqueCommunities)},
		{"  uniq. AS paths", strconv.Itoa(table1.UniqueASPaths)},
		{"Withdrawals", strconv.Itoa(table1.Withdrawals)},
	}))

	fmt.Println("\nTable 2 — announcement types (paper: pc 33.7 pn 15.1 nc 24.5 nn 25.7 xc 0.3 xn 0.7):")
	var rows [][]string
	for _, ty := range classify.Types() {
		rows = append(rows, []string{
			ty.String(),
			strconv.Itoa(counts.Of(ty)),
			fmt.Sprintf("%.1f%%", 100*counts.Share(ty)),
		})
	}
	fmt.Print(textplot.Table([]string{"type", "count", "share"}, rows))
	fmt.Printf("\nno-path-change (nc+nn) share: %.1f%% (paper: ~50%%)\n",
		100*counts.NoPathChangeShare())
}

// runPipeline streams real MRT archives from dir through the normalizer
// and both analyses in one combined pass.
func runPipeline(dir, rsList string) (classify.Counts, analysis.Table1, error) {
	routeServers := make(map[uint32]bool)
	if rsList != "" {
		for _, tok := range strings.Split(rsList, ",") {
			asn, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
			if err != nil {
				return classify.Counts{}, analysis.Table1{}, fmt.Errorf("bad route server ASN %q: %w", tok, err)
			}
			routeServers[uint32(asn)] = true
		}
	}
	norm := pipeline.NewNormalizer(registry.Synthetic(time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)))
	norm.RouteServers = routeServers

	var srcErr error
	_, sources, err := pipeline.DirSources(norm, dir, &srcErr)
	if err != nil {
		return classify.Counts{}, analysis.Table1{}, err
	}
	// The archive directory is self-contained: derive Table 1 and Table 2
	// over every event it yields, one archive at a time.
	t1, counts := analysis.Report(stream.Concat(sources...), nil)
	if srcErr != nil {
		return counts, t1, srcErr
	}
	fmt.Fprintf(os.Stderr, "pipeline stats: %+v\n", norm.Stats)
	return counts, t1, nil
}
