package evstore

import (
	"context"
	"fmt"
	"os"
)

// decodeAheadDepth is how many blocks the prefetch worker may hold
// read+decompressed ahead of the consumer. Decompression is the only
// stage that moves off the critical path — columnar decode and
// classification stay sequential per collector timeline — so a small
// depth is enough to hide it; deeper queues just pin more payload
// buffers.
const decodeAheadDepth = 2

// prefetcher owns the decode-ahead state of one blockReader: the
// worker-side decompressor and staging buffer (disjoint from the
// reader's synchronous ones, so the two paths never share mutable
// state), the payload buffers rotated through the pipeline, and a
// scratch list for the matching blocks of the current partition.
type prefetcher struct {
	dec    blockDecompressor
	cbuf   []byte
	bufs   [][]byte    // idle payload buffers, retained across partitions
	blocks []blockMeta // scratch for the matching-block list
}

// fetchedBlock is one prefetched unit: the decompressed payload (or
// the buffer to recycle plus an error) and the block it came from.
type fetchedBlock struct {
	payload []byte
	meta    blockMeta
	err     error
}

// fetch reads and decompresses one block into buf, growing it as
// needed; the (possibly reallocated) buffer is always returned so the
// caller keeps it in rotation.
func (pf *prefetcher) fetch(f *os.File, bm blockMeta, buf []byte) ([]byte, error) {
	if cap(buf) < bm.ulen {
		buf = make([]byte, bm.ulen)
	}
	buf = buf[:bm.ulen]
	if bm.codec == CodecRaw {
		if bm.clen != bm.ulen {
			return buf, fmt.Errorf("evstore: raw block length %d, footer says %d", bm.clen, bm.ulen)
		}
		_, err := f.ReadAt(buf, bm.offset)
		return buf, err
	}
	if cap(pf.cbuf) < bm.clen {
		pf.cbuf = make([]byte, bm.clen)
	}
	cbuf := pf.cbuf[:bm.clen]
	if _, err := f.ReadAt(cbuf, bm.offset); err != nil {
		return buf, err
	}
	return buf, pf.dec.decompress(bm.codec, buf, cbuf)
}

// run pipelines one partition's matching blocks: a worker goroutine
// reads and decompresses up to decodeAheadDepth blocks ahead while the
// consumer decodes, filters, and classifies the current one. Payload
// buffers rotate through a bounded free list; block N's buffer
// re-enters the free list only after handle(N) has returned, which
// preserves the batch-valid-until-next-decode contract exactly as the
// synchronous path does (there, the next readBlockPayload overwrites
// the shared buffer). Cancellation is honoured at block boundaries.
func (pf *prefetcher) run(ctx context.Context, f *os.File, blocks []blockMeta,
	handle func(payload []byte, bm blockMeta, prefetched bool) (bool, error)) (more bool, err error) {
	const nbuf = decodeAheadDepth + 1
	results := make(chan fetchedBlock, decodeAheadDepth)
	free := make(chan []byte, nbuf)
	for i := 0; i < nbuf; i++ {
		var buf []byte
		if n := len(pf.bufs); n > 0 {
			buf, pf.bufs = pf.bufs[n-1], pf.bufs[:n-1]
		}
		free <- buf
	}
	stop := make(chan struct{})
	go func() {
		defer close(results)
		for _, bm := range blocks {
			var buf []byte
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			fb := fetchedBlock{meta: bm}
			fb.payload, fb.err = pf.fetch(f, bm, buf)
			select {
			case results <- fb:
			case <-stop:
				return
			}
			if fb.err != nil {
				return
			}
		}
	}()

	var prev []byte
	defer func() {
		// Join the worker — closing stop unblocks it, and results
		// closing marks its exit — then pull every buffer back into
		// pf.bufs for the next partition. (A buffer the worker held at
		// the moment of an early stop is simply dropped to the GC.)
		close(stop)
		for fb := range results {
			if fb.payload != nil {
				pf.bufs = append(pf.bufs, fb.payload)
			}
		}
		if prev != nil {
			pf.bufs = append(pf.bufs, prev)
		}
		for {
			select {
			case buf := <-free:
				if buf != nil {
					pf.bufs = append(pf.bufs, buf)
				}
			default:
				return
			}
		}
	}()

	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		fb, ok := <-results
		if !ok {
			return true, nil
		}
		if prev != nil {
			// Never blocks: with nbuf buffers total and one held as
			// prev, at most decodeAheadDepth can be elsewhere.
			free <- prev
		}
		prev = fb.payload
		if fb.err != nil {
			return false, fmt.Errorf("%s: %w", f.Name(), fb.err)
		}
		more, err := handle(fb.payload, fb.meta, true)
		if err != nil || !more {
			return more, err
		}
	}
}
