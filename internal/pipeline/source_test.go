package pipeline_test

import (
	"os"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/pipeline"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestMRTSourceDrivesClassification is the end-to-end streaming path: a
// generated day is archived per collector (never materialized as one
// slice), read back lazily through the normalizer, and classified — and
// the counts must match classifying the materialized dataset directly.
func TestMRTSourceDrivesClassification(t *testing.T) {
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultDayConfig(day)
	cfg.Collectors = 2
	cfg.PeersPerCollector = 5
	cfg.PrefixesV4 = 60
	cfg.PrefixesV6 = 6

	dir, err := os.MkdirTemp("", "pipeline-source-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Producer side: archives written straight from per-session sources.
	peers, sources := workload.DaySources(cfg)
	files, err := collector.WriteSourcesDir(peers, sources, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != cfg.Collectors {
		t.Fatalf("wrote %d archives, want %d", len(files), cfg.Collectors)
	}

	// Reference: the materialized slice path.
	ds := workload.GenerateDay(cfg)
	want := stream.Classify(ds.Source(), ds.CountingWindow)

	// Consumer side: archives → normalizer → classifier, one record at a
	// time. Route-server fixup must undo the collector's ASN trimming so
	// the round trip is lossless.
	norm := pipeline.NewNormalizer(nil)
	norm.RouteServers = ds.RouteServerASNs()
	var srcErr error
	names, archSources, err := pipeline.DirSources(norm, dir, &srcErr)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != cfg.Collectors {
		t.Fatalf("found %d archives, want %d", len(names), cfg.Collectors)
	}
	got := stream.Classify(stream.Concat(archSources...), cfg.InWindow)
	if srcErr != nil {
		t.Fatal(srcErr)
	}
	if got != want {
		t.Fatalf("archive-backed counts %+v != dataset counts %+v", got, want)
	}
}

func TestFileSourceReportsErrors(t *testing.T) {
	norm := pipeline.NewNormalizer(nil)
	var srcErr error
	src := pipeline.FileSource(norm, "rrc00", "/nonexistent/archive.mrt", &srcErr)
	if n := stream.Count(src); n != 0 {
		t.Fatalf("yielded %d events from a missing file", n)
	}
	if srcErr == nil {
		t.Fatal("missing file did not surface an error")
	}
}

func TestCollectorName(t *testing.T) {
	for in, want := range map[string]string{
		"/tmp/x/rrc00.updates.mrt": "rrc00",
		"route-views2.mrt":         "route-views2",
		"plain":                    "plain",
	} {
		if got := pipeline.CollectorName(in); got != want {
			t.Errorf("CollectorName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSourceEarlyExit ensures breaking out of an archive-backed source
// does not report an error and stops cleanly mid-file.
func TestSourceEarlyExit(t *testing.T) {
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultDayConfig(day)
	cfg.Collectors = 1
	cfg.PeersPerCollector = 3
	cfg.PrefixesV4 = 30
	cfg.PrefixesV6 = 0

	dir, err := os.MkdirTemp("", "pipeline-early-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	peers, sources := workload.DaySources(cfg)
	if _, err := collector.WriteSourcesDir(peers, sources, dir); err != nil {
		t.Fatal(err)
	}

	norm := pipeline.NewNormalizer(nil)
	var srcErr error
	_, archSources, err := pipeline.DirSources(norm, dir, &srcErr)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range stream.Concat(archSources...) {
		n++
		if n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("consumed %d events", n)
	}
	if srcErr != nil {
		t.Fatalf("early exit surfaced error: %v", srcErr)
	}
}
