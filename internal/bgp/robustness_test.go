package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestUnmarshalNeverPanics throws random byte soup at the message parser:
// it must reject or accept, never panic or over-read.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBAD))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(256)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on %x: %v", trial, buf, r)
				}
			}()
			Unmarshal(buf, opt4)
		}()
	}
}

// TestUnmarshalMutatedValidMessages flips bytes in well-formed messages —
// the harsher corpus, since framing is mostly intact.
func TestUnmarshalMutatedValidMessages(t *testing.T) {
	base, err := Marshal(&Update{
		NLRI: []netip.Prefix{mustPrefix(t, "84.205.64.0/24"), mustPrefix(t, "10.0.0.0/8")},
		Attrs: PathAttrs{
			Origin:           OriginIGP,
			ASPath:           NewASPath(20205, 3356, 12654),
			NextHop:          mustAddr(t, "10.0.0.1"),
			Communities:      Communities{NewCommunity(3356, 901)},
			LargeCommunities: LargeCommunities{{1, 2, 3}},
			HasMED:           true,
			MED:              50,
		},
	}, opt4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(0xF00D))
	for trial := 0; trial < 5000; trial++ {
		buf := append([]byte(nil), base...)
		// Mutate 1-4 bytes after the marker so most length fields survive.
		for m := 0; m < 1+rng.Intn(4); m++ {
			i := markerLen + rng.Intn(len(buf)-markerLen)
			buf[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on %x: %v", trial, buf, r)
				}
			}()
			Unmarshal(buf, opt4)
		}()
	}
}

// TestDecodeUpdateTruncationSweep truncates a valid UPDATE body at every
// possible length: each prefix must parse or error, never panic.
func TestDecodeUpdateTruncationSweep(t *testing.T) {
	full, err := Marshal(&Update{
		NLRI: []netip.Prefix{mustPrefix(t, "192.0.2.0/24")},
		Attrs: PathAttrs{
			Origin:      OriginIGP,
			ASPath:      NewASPath(65000, 65001),
			NextHop:     mustAddr(t, "10.0.0.1"),
			Communities: Communities{1, 2, 3},
		},
	}, opt4)
	if err != nil {
		t.Fatal(err)
	}
	body := full[HeaderLen:]
	for cut := 0; cut <= len(body); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			DecodeUpdate(body[:cut], opt4)
		}()
	}
}
