package serve_test

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/evstore"
	"repro/internal/serve"
)

// codecSpecs covers the QuerySpec shapes the protocol must carry: the
// zero spec, fully-loaded specs, and specs exercising each optional
// dimension alone (so a framing bug in one field can't hide behind the
// others).
func codecSpecs() []serve.QuerySpec {
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	return []serve.QuerySpec{
		{},
		{Kind: serve.KindTable1},
		{Kind: serve.KindTable2, Window: evstore.TimeRange{From: day, To: day.Add(24 * time.Hour)}},
		{Kind: serve.KindTable2, Window: evstore.TimeRange{To: day}}, // half-open bound
		{Kind: serve.KindTable1, Collectors: []string{"rrc00", "route-views2", ""}},
		{Kind: serve.KindTable2, PeerAS: []uint32{0, 65535, 4200000000}},
		{Kind: serve.KindTable1, PrefixRange: netip.MustParsePrefix("10.0.0.0/8")},
		{Kind: serve.KindFigure2, FromYear: 2018, ToYear: 2020},
		{
			Kind:      serve.KindFigure3,
			Collector: "rrc00",
			Prefix:    netip.MustParsePrefix("2001:db8::/32"),
		},
		{
			Kind:      serve.KindFigure5,
			Window:    evstore.TimeRange{From: day, To: day.Add(time.Hour)},
			Collector: "rrc00",
			Prefix:    netip.MustParsePrefix("192.0.2.0/24"),
			PeerAddr:  netip.MustParseAddr("198.51.100.7"),
			Path:      "64500 64501 64502",
		},
	}
}

func codecEnvelopes() []*serve.StateEnvelope {
	return []*serve.StateEnvelope{
		{},
		{
			Backend:    "local",
			Generation: 0xdeadbeefcafe,
			Source:     "snapshots",
			Elapsed:    1234567 * time.Nanosecond,
			Plan:       evstore.PlanStats{Shards: 4, Partitions: 12, Merged: 3, Jumped: 2, Scanned: 7, Skipped: 5},
			Scan: evstore.ScanStats{
				Partitions: 7, Blocks: 40, BlocksDecoded: 38,
				BytesRead: 300000, BytesDecompressed: 1 << 20,
				BlocksPrefetched: 35,
				PerCodec: [evstore.NumCodecs]evstore.CodecScanStats{
					evstore.CodecLZ:  {Blocks: 30, BytesRead: 250000, BytesDecompressed: 900000},
					evstore.CodecRaw: {Blocks: 8, BytesRead: 50000, BytesDecompressed: 50000},
				},
				Events: 99999,
			},
			Merges: 6,
			Keys:   []string{"table1", "", "revealed:ripe"},
			States: [][]byte{{1, 2, 3}, nil, bytes.Repeat([]byte{0xab}, 300)},
			Shards: []serve.ShardProvenance{
				{Backend: "http://127.0.0.1:9001", Generation: 7, Source: "scan", Elapsed: time.Millisecond},
				{Backend: "http://127.0.0.1:9002", Source: "", Err: "connection refused"},
			},
		},
	}
}

// TestQuerySpecRoundTrip: decode(encode(spec)) re-encodes to identical
// bytes — the canonical-form check that catches both decode drift and
// non-deterministic encoding.
func TestQuerySpecRoundTrip(t *testing.T) {
	for i, spec := range codecSpecs() {
		enc := serve.AppendQuerySpec(nil, spec)
		got, err := serve.DecodeQuerySpec(enc)
		if err != nil {
			t.Fatalf("spec %d: decode: %v", i, err)
		}
		re := serve.AppendQuerySpec(nil, got)
		if !bytes.Equal(enc, re) {
			t.Fatalf("spec %d: re-encode differs\n enc %x\n re  %x", i, enc, re)
		}
		if got.CacheKey() != spec.CacheKey() {
			t.Fatalf("spec %d: cache key drifted across the wire: %q vs %q",
				i, got.CacheKey(), spec.CacheKey())
		}
	}
}

// TestStateEnvelopeRoundTrip: same canonical-form check for the
// response side of the protocol.
func TestStateEnvelopeRoundTrip(t *testing.T) {
	for i, env := range codecEnvelopes() {
		enc := serve.AppendStateEnvelope(nil, env)
		got, err := serve.DecodeStateEnvelope(enc)
		if err != nil {
			t.Fatalf("envelope %d: decode: %v", i, err)
		}
		re := serve.AppendStateEnvelope(nil, got)
		if !bytes.Equal(enc, re) {
			t.Fatalf("envelope %d: re-encode differs\n enc %x\n re  %x", i, enc, re)
		}
		if len(got.Keys) != len(env.Keys) {
			t.Fatalf("envelope %d: %d keys, want %d", i, len(got.Keys), len(env.Keys))
		}
		for j := range got.Keys {
			if got.Keys[j] != env.Keys[j] || !bytes.Equal(got.States[j], env.States[j]) {
				t.Fatalf("envelope %d: state %d differs", i, j)
			}
		}
	}
}

// TestCodecRejectsCorruption: every truncation of a valid message must
// decode to an error (never a silent misparse), trailing garbage must
// be rejected, and no single-byte flip may panic the decoder.
func TestCodecRejectsCorruption(t *testing.T) {
	specEnc := serve.AppendQuerySpec(nil, codecSpecs()[9])
	envEnc := serve.AppendStateEnvelope(nil, codecEnvelopes()[1])

	for n := 0; n < len(specEnc); n++ {
		if _, err := serve.DecodeQuerySpec(specEnc[:n]); err == nil {
			t.Fatalf("spec truncated to %d/%d bytes decoded cleanly", n, len(specEnc))
		}
	}
	for n := 0; n < len(envEnc); n++ {
		if _, err := serve.DecodeStateEnvelope(envEnc[:n]); err == nil {
			t.Fatalf("envelope truncated to %d/%d bytes decoded cleanly", n, len(envEnc))
		}
	}

	if _, err := serve.DecodeQuerySpec(append(append([]byte(nil), specEnc...), 0x00)); err == nil {
		t.Fatal("spec with trailing byte decoded cleanly")
	}
	if _, err := serve.DecodeStateEnvelope(append(append([]byte(nil), envEnc...), 0xff)); err == nil {
		t.Fatal("envelope with trailing byte decoded cleanly")
	}

	// Byte flips: a flip may land inside string content and still decode
	// (that's fine — the protocol has no checksum); the requirement is
	// that the decoder never panics and never over-reads.
	flip := func(b []byte, i int) []byte {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		return c
	}
	for i := range specEnc {
		serve.DecodeQuerySpec(flip(specEnc, i))
	}
	for i := range envEnc {
		serve.DecodeStateEnvelope(flip(envEnc, i))
	}
}
