package pipeline

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/mrt"
	"repro/internal/registry"
)

var (
	epoch = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	ts0   = time.Date(2020, 3, 15, 2, 0, 1, 0, time.UTC)
)

func record(t testing.TB, peerAS uint32, u *bgp.Update) *mrt.BGP4MPMessage {
	t.Helper()
	wire, err := bgp.Marshal(u, bgp.MarshalOptions{FourByteAS: true})
	if err != nil {
		t.Fatal(err)
	}
	return &mrt.BGP4MPMessage{
		PeerAS:     peerAS,
		LocalAS:    12654,
		PeerAddr:   netip.MustParseAddr("203.0.113.5"),
		LocalAddr:  netip.MustParseAddr("203.0.113.1"),
		Data:       wire,
		FourByteAS: true,
	}
}

func announce(t testing.TB, peerAS uint32, prefix string, path bgp.ASPath, comms bgp.Communities) *mrt.BGP4MPMessage {
	t.Helper()
	return record(t, peerAS, &bgp.Update{
		NLRI: []netip.Prefix{netip.MustParsePrefix(prefix)},
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      path,
			NextHop:     netip.MustParseAddr("10.0.0.1"),
			Communities: comms,
		},
	})
}

func hdr(ts time.Time) mrt.Header {
	return mrt.Header{Timestamp: ts.Truncate(time.Second), Type: mrt.TypeBGP4MP, Subtype: mrt.SubtypeMessageAS4,
		Microsecond: uint32(ts.Nanosecond() / 1000)}
}

func TestBasicAnnouncement(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	rec := announce(t, 20205, "84.205.64.0/24", bgp.NewASPath(20205, 3356, 12654), bgp.Communities{bgp.NewCommunity(3356, 901)})
	events, err := n.Process("rrc00", hdr(ts0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.Withdraw || e.Prefix != netip.MustParsePrefix("84.205.64.0/24") || e.PeerAS != 20205 {
		t.Errorf("event: %+v", e)
	}
	if e.ASPath.String() != "20205 3356 12654" {
		t.Errorf("path: %v", e.ASPath)
	}
	if n.Stats.Announcements != 1 || n.Stats.Messages != 1 {
		t.Errorf("stats: %+v", n.Stats)
	}
}

func TestWithdrawal(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	rec := record(t, 20205, &bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("84.205.64.0/24")}})
	events, err := n.Process("rrc00", hdr(ts0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Withdraw {
		t.Fatalf("events: %+v", events)
	}
	if n.Stats.Withdrawals != 1 {
		t.Errorf("stats: %+v", n.Stats)
	}
}

func TestBogonASNDropped(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	// 64500 falls in the reserved 64496–64511 gap.
	rec := announce(t, 20205, "84.205.64.0/24", bgp.NewASPath(20205, 64500, 12654), nil)
	events, err := n.Process("rrc00", hdr(ts0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("bogon path produced events: %+v", events)
	}
	if n.Stats.DroppedBogonASN != 1 {
		t.Errorf("stats: %+v", n.Stats)
	}
}

func TestBogonPrefixDropped(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	rec := announce(t, 20205, "192.88.99.0/24", bgp.NewASPath(20205, 12654), nil)
	events, err := n.Process("rrc00", hdr(ts0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 || n.Stats.DroppedBogonPrefix != 1 {
		t.Errorf("events %v, stats %+v", events, n.Stats)
	}
}

func TestNilRegistrySkipsFiltering(t *testing.T) {
	n := NewNormalizer(nil)
	rec := announce(t, 20205, "192.88.99.0/24", bgp.NewASPath(20205, 64500), nil)
	events, err := n.Process("rrc00", hdr(ts0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("filter ran with nil registry: %+v", events)
	}
}

func TestRouteServerFixup(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	n.RouteServers[6695] = true // a route-server peer
	// Path does not start with the route server's ASN.
	rec := announce(t, 6695, "84.205.64.0/24", bgp.NewASPath(3356, 12654), nil)
	events, err := n.Process("rrc00", hdr(ts0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := events[0].ASPath.String(); got != "6695 3356 12654" {
		t.Errorf("path = %q, want route server ASN prepended", got)
	}
	if n.Stats.RouteServerFixups != 1 {
		t.Errorf("stats: %+v", n.Stats)
	}
	// Path already starting with the RS ASN is untouched.
	rec = announce(t, 6695, "84.205.64.0/24", bgp.NewASPath(6695, 3356, 12654), nil)
	events, _ = n.Process("rrc00", hdr(ts0.Add(time.Second)), rec)
	if got := events[0].ASPath.String(); got != "6695 3356 12654" {
		t.Errorf("path = %q, want unchanged", got)
	}
	if n.Stats.RouteServerFixups != 1 {
		t.Errorf("fixup double counted: %+v", n.Stats)
	}
}

func TestSameSecondDisambiguation(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	h := mrt.Header{Timestamp: ts0.Truncate(time.Second), Type: mrt.TypeBGP4MP, Subtype: mrt.SubtypeMessageAS4}
	rec := announce(t, 20205, "84.205.64.0/24", bgp.NewASPath(20205, 12654), nil)
	var times []time.Time
	for i := 0; i < 3; i++ {
		events, err := n.Process("rrc00", h, rec)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, events[0].Time)
	}
	if !times[1].After(times[0]) || !times[2].After(times[1]) {
		t.Errorf("same-second times not strictly increasing: %v", times)
	}
	if d := times[1].Sub(times[0]); d != 10*time.Microsecond {
		t.Errorf("step = %v, want 10µs", d)
	}
	if n.Stats.Adjusted != 2 {
		t.Errorf("stats: %+v", n.Stats)
	}
	// Separate collectors keep independent clocks.
	events, _ := n.Process("rrc01", h, rec)
	if !events[0].Time.Equal(h.Time()) {
		t.Error("collector clocks are not independent")
	}
}

func TestNonUpdateSkipped(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	ka, err := bgp.Marshal(&bgp.Keepalive{}, bgp.MarshalOptions{FourByteAS: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := &mrt.BGP4MPMessage{
		PeerAS: 20205, LocalAS: 12654,
		PeerAddr:  netip.MustParseAddr("203.0.113.5"),
		LocalAddr: netip.MustParseAddr("203.0.113.1"),
		Data:      ka, FourByteAS: true,
	}
	events, err := n.Process("rrc00", hdr(ts0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 || n.Stats.NonUpdate != 1 {
		t.Errorf("events %v, stats %+v", events, n.Stats)
	}
}

func TestProcessReaderEndToEnd(t *testing.T) {
	// Write a small MRT stream, read it back through the pipeline, and
	// classify the result: announcement, nc announcement, withdrawal.
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	w.ExtendedTime = true
	path := bgp.NewASPath(20205, 3356, 12654)
	recs := []*mrt.BGP4MPMessage{
		announce(t, 20205, "84.205.64.0/24", path, bgp.Communities{bgp.NewCommunity(3356, 901)}),
		announce(t, 20205, "84.205.64.0/24", path, bgp.Communities{bgp.NewCommunity(3356, 902)}),
		record(t, 20205, &bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("84.205.64.0/24")}}),
	}
	for i, r := range recs {
		if err := w.Write(ts0.Add(time.Duration(i)*time.Second), r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	n := NewNormalizer(registry.Synthetic(epoch))
	cl := classify.New()
	var counts classify.Counts
	err := n.ProcessReader("rrc00", mrt.NewReader(&buf), func(e classify.Event) error {
		counts.Observe(cl, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts.Announcements() != 2 || counts.Withdrawals != 1 {
		t.Fatalf("counts: %+v", counts)
	}
	if counts.Of(classify.PC) != 1 || counts.Of(classify.NC) != 1 {
		t.Errorf("types: %+v", counts)
	}
}

func TestMultiPrefixUpdate(t *testing.T) {
	n := NewNormalizer(registry.Synthetic(epoch))
	u := &bgp.Update{
		NLRI: []netip.Prefix{
			netip.MustParsePrefix("10.1.0.0/16"),
			netip.MustParsePrefix("10.2.0.0/16"),
		},
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.3.0.0/16")},
		Attrs: bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.NewASPath(20205, 12654),
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
	}
	events, err := n.Process("rrc00", hdr(ts0), record(t, 20205, u))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if !events[0].Withdraw || events[1].Withdraw || events[2].Withdraw {
		t.Error("withdrawals must precede announcements within one update")
	}
	// All events share the (possibly adjusted) timestamp of the message.
	if !events[0].Time.Equal(events[2].Time) {
		t.Error("events from one message must share a timestamp")
	}
}
