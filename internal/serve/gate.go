package serve

import (
	"net/http"
	"sync/atomic"
)

// Gate is a bind-first startup handler: a daemon binds its listener and
// serves the Gate immediately, then swaps the real handler in once the
// (possibly long) store open + first snapshot pass finishes. Until
// then /healthz answers 200 with phase "starting" (the process is
// alive), /readyz answers 503 (do not route traffic here), and every
// other path answers 503 — so orchestrators and load balancers get
// meaningful probe answers during warmup instead of connection
// refusals, and readiness is observable from the first instant of the
// process's life.
type Gate struct {
	h atomic.Pointer[http.Handler]
}

// NewGate returns a gate in the warming state.
func NewGate() *Gate { return &Gate{} }

// Ready swaps in the real handler; every subsequent request routes to
// it. Safe to call once from the startup goroutine.
func (g *Gate) Ready(h http.Handler) { g.h.Store(&h) }

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	switch r.URL.Path {
	case "/healthz":
		writeJSON(w, http.StatusOK, map[string]any{"ok": false, "phase": "starting"})
	case "/readyz":
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "starting"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "warming up: store opening / first snapshot pass"})
	}
}
