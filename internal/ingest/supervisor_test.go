package ingest

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
)

// funcFeed scripts a Feed from a closure.
type funcFeed struct {
	name string
	run  func(ctx context.Context, emit func(classify.Event) error) error
}

func (f funcFeed) Name() string { return f.name }
func (f funcFeed) Run(ctx context.Context, emit func(classify.Event) error) error {
	return f.run(ctx, emit)
}

// memSink collects delivered events; full simulates a saturated queue.
type memSink struct {
	mu     sync.Mutex
	events []classify.Event
	full   bool
}

func (s *memSink) Deliver(ctx context.Context, h *FeedHandle, e classify.Event) error {
	s.mu.Lock()
	full := s.full
	if !full {
		s.events = append(s.events, e)
	}
	s.mu.Unlock()
	if full && h.Options().Backpressure == Shed {
		h.countShed()
		return nil
	}
	h.countEvent(e)
	return nil
}

func (s *memSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// fastPolicy keeps restart tests quick.
var fastPolicy = RestartPolicy{Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, MaxRestarts: 3}

func waitDone(t *testing.T, h *FeedHandle) FeedStatus {
	t.Helper()
	select {
	case <-h.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("feed %s did not reach a terminal state", h.Name())
	}
	return h.Status()
}

func TestSupervisorCircuitBreaks(t *testing.T) {
	sup := NewSupervisor(context.Background(), &memSink{}, fastPolicy)
	attempts := 0
	boom := errors.New("collector unreachable")
	h, err := sup.Attach(funcFeed{"bad", func(ctx context.Context, emit func(classify.Event) error) error {
		attempts++
		return boom
	}}, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, h)
	if st.State != FeedFailed {
		t.Fatalf("state = %v, want failed", st.State)
	}
	if attempts != fastPolicy.MaxRestarts {
		t.Fatalf("attempts = %d, want %d (circuit break)", attempts, fastPolicy.MaxRestarts)
	}
	if st.Restarts != fastPolicy.MaxRestarts-1 {
		t.Fatalf("restarts = %d, want %d", st.Restarts, fastPolicy.MaxRestarts-1)
	}
	if !strings.Contains(st.LastError, "unreachable") {
		t.Fatalf("LastError = %q, want the attempt error", st.LastError)
	}
}

func TestSupervisorProgressResetsBreaker(t *testing.T) {
	sink := &memSink{}
	sup := NewSupervisor(context.Background(), sink, fastPolicy)
	// Fails 3× MaxRestarts times but emits an event each attempt:
	// progress must keep the breaker from tripping.
	const flaps = 9
	attempts := 0
	h, err := sup.Attach(funcFeed{"flappy", func(ctx context.Context, emit func(classify.Event) error) error {
		attempts++
		if err := emit(classify.Event{Collector: "rrc00"}); err != nil {
			return err
		}
		if attempts <= flaps {
			return errors.New("transient")
		}
		return nil
	}}, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, h)
	if st.State != FeedDone {
		t.Fatalf("state = %v (err %q), want done", st.State, st.LastError)
	}
	if st.Events != flaps+1 {
		t.Fatalf("events = %d, want %d", st.Events, flaps+1)
	}
	if sink.len() != flaps+1 {
		t.Fatalf("sink got %d events, want %d", sink.len(), flaps+1)
	}
}

func TestSupervisorPanicIsolation(t *testing.T) {
	sink := &memSink{}
	sup := NewSupervisor(context.Background(), sink, fastPolicy)
	bad, err := sup.Attach(funcFeed{"panicky", func(ctx context.Context, emit func(classify.Event) error) error {
		panic("corrupt update")
	}}, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := sup.Attach(funcFeed{"good", func(ctx context.Context, emit func(classify.Event) error) error {
		for i := 0; i < 10; i++ {
			if err := emit(classify.Event{Collector: "rrc01"}); err != nil {
				return err
			}
		}
		return nil
	}}, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, bad); st.State != FeedFailed || !strings.Contains(st.LastError, "panicked") {
		t.Fatalf("panicky feed: state %v err %q, want failed + panic error", st.State, st.LastError)
	}
	if st := waitDone(t, good); st.State != FeedDone || st.Events != 10 {
		t.Fatalf("good feed: state %v events %d, want done/10 — panic escaped its feed", st.State, st.Events)
	}
}

func TestSupervisorKillRestartsFeed(t *testing.T) {
	sink := &memSink{}
	sup := NewSupervisor(context.Background(), sink, fastPolicy)
	started := make(chan struct{}, 2)
	attempt := 0
	h, err := sup.Attach(funcFeed{"victim", func(ctx context.Context, emit func(classify.Event) error) error {
		attempt++
		if err := emit(classify.Event{Collector: "rrc00"}); err != nil {
			return err
		}
		started <- struct{}{}
		if attempt == 1 {
			<-ctx.Done() // park until killed
			return ctx.Err()
		}
		return nil
	}}, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !sup.Kill("victim") {
		t.Fatal("Kill: feed not running")
	}
	st := waitDone(t, h)
	if st.State != FeedDone {
		t.Fatalf("state = %v, want done after restart", st.State)
	}
	if st.Restarts != 1 || st.Events != 2 {
		t.Fatalf("restarts = %d events = %d, want 1 restart and 2 events", st.Restarts, st.Events)
	}
}

func TestSupervisorOneShotNoRestart(t *testing.T) {
	sup := NewSupervisor(context.Background(), &memSink{}, fastPolicy)
	attempts := 0
	h, err := sup.Attach(funcFeed{"session", func(ctx context.Context, emit func(classify.Event) error) error {
		attempts++
		return errors.New("peer reset")
	}}, FeedOptions{OneShot: true})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, h)
	if st.State != FeedFailed || attempts != 1 || st.Restarts != 0 {
		t.Fatalf("state %v attempts %d restarts %d, want failed/1/0", st.State, attempts, st.Restarts)
	}
}

func TestSupervisorShutdownStopsFeeds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := NewSupervisor(ctx, &memSink{}, fastPolicy)
	running := make(chan struct{})
	var once sync.Once
	h, err := sup.Attach(funcFeed{"long", func(ctx context.Context, emit func(classify.Event) error) error {
		once.Do(func() { close(running) })
		<-ctx.Done()
		return ctx.Err()
	}}, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	cancel()
	sup.Wait()
	if st := h.Status(); st.State != FeedStopped {
		t.Fatalf("state = %v, want stopped", st.State)
	}
	if _, err := sup.Attach(funcFeed{"late", nil}, FeedOptions{}); err == nil {
		t.Fatal("Attach after shutdown succeeded")
	}
}

func TestSupervisorShedCounting(t *testing.T) {
	sink := &memSink{full: true}
	sup := NewSupervisor(context.Background(), sink, fastPolicy)
	h, err := sup.Attach(funcFeed{"lossy", func(ctx context.Context, emit func(classify.Event) error) error {
		for i := 0; i < 25; i++ {
			if err := emit(classify.Event{Collector: "rrc00"}); err != nil {
				return err
			}
		}
		return nil
	}}, FeedOptions{Backpressure: Shed})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, h)
	if st.State != FeedDone || st.Sheds != 25 || st.Events != 0 {
		t.Fatalf("state %v sheds %d events %d, want done with 25 sheds and 0 accepts", st.State, st.Sheds, st.Events)
	}
	if events, sheds := sup.Totals(); events != 0 || sheds != 25 {
		t.Fatalf("Totals = %d/%d, want 0/25", events, sheds)
	}
	if got := sup.StateSummary(); got != "done:1" {
		t.Fatalf("StateSummary = %q, want done:1", got)
	}
}
