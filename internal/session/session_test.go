package session

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
)

// pipePair establishes both halves of a session over net.Pipe.
func pipePair(t *testing.T, cfgA, cfgB Config) (*Session, *Session) {
	t.Helper()
	ca, cb := net.Pipe()
	var sa, sb *Session
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sa, errA = Establish(ca, cfgA) }()
	go func() { defer wg.Done(); sb, errB = Establish(cb, cfgB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("handshake: %v / %v", errA, errB)
	}
	return sa, sb
}

func cfg(as uint32, id string) Config {
	return Config{
		LocalAS:  as,
		RouterID: netip.MustParseAddr(id),
		HoldTime: 5 * time.Second,
	}
}

func TestHandshake(t *testing.T) {
	sa, sb := pipePair(t, cfg(65001, "10.0.0.1"), cfg(4200000001, "10.0.0.2"))
	defer sa.Close()
	defer sb.Close()
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states: %v / %v", sa.State(), sb.State())
	}
	if sa.PeerAS() != 4200000001 {
		t.Errorf("A sees peer AS %d (4-byte AS capability)", sa.PeerAS())
	}
	if sb.PeerAS() != 65001 {
		t.Errorf("B sees peer AS %d", sb.PeerAS())
	}
	if !sa.MarshalOptions().FourByteAS {
		t.Error("4-byte AS not negotiated")
	}
	if sa.HoldTime() != 5*time.Second {
		t.Errorf("hold time = %v", sa.HoldTime())
	}
}

func TestHoldTimeNegotiationMinimum(t *testing.T) {
	a := cfg(65001, "10.0.0.1")
	a.HoldTime = 30 * time.Second
	b := cfg(65002, "10.0.0.2")
	b.HoldTime = 9 * time.Second
	sa, sb := pipePair(t, a, b)
	defer sa.Close()
	defer sb.Close()
	if sa.HoldTime() != 9*time.Second || sb.HoldTime() != 9*time.Second {
		t.Errorf("negotiated hold: %v / %v, want 9s", sa.HoldTime(), sb.HoldTime())
	}
}

func TestExpectASMismatch(t *testing.T) {
	ca, cb := net.Pipe()
	a := cfg(65001, "10.0.0.1")
	a.ExpectAS = 65099 // B is 65002: reject
	var wg sync.WaitGroup
	wg.Add(1)
	var errB error
	go func() {
		defer wg.Done()
		_, errB = Establish(cb, cfg(65002, "10.0.0.2"))
	}()
	_, errA := Establish(ca, a)
	wg.Wait()
	if errA == nil {
		t.Fatal("AS mismatch accepted")
	}
	// B observes either the NOTIFICATION or a closed pipe.
	if errB == nil {
		t.Fatal("B's handshake should fail too")
	}
}

func TestUpdateExchange(t *testing.T) {
	got := make(chan *bgp.Update, 10)
	a := cfg(65001, "10.0.0.1")
	b := cfg(65002, "10.0.0.2")
	b.OnUpdate = func(u *bgp.Update) { got <- u }
	sa, sb := pipePair(t, a, b)
	defer sa.Close()
	defer sb.Close()
	go sa.Run()
	go sb.Run()

	u := &bgp.Update{
		NLRI: []netip.Prefix{netip.MustParsePrefix("84.205.64.0/24")},
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      bgp.NewASPath(65001),
			NextHop:     netip.MustParseAddr("10.0.0.1"),
			Communities: bgp.Communities{bgp.NewCommunity(65001, 300)},
		},
	}
	if err := sa.Send(u); err != nil {
		t.Fatal(err)
	}
	select {
	case rx := <-got:
		if rx.NLRI[0] != u.NLRI[0] {
			t.Errorf("prefix: %v", rx.NLRI)
		}
		if !rx.Attrs.Communities.Equal(u.Attrs.Communities) {
			t.Errorf("communities: %v", rx.Attrs.Communities)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestGracefulClose(t *testing.T) {
	sa, sb := pipePair(t, cfg(65001, "10.0.0.1"), cfg(65002, "10.0.0.2"))
	errs := make(chan error, 1)
	go func() { errs <- sb.Run() }()
	go sa.Run()
	time.Sleep(50 * time.Millisecond)
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err != nil {
			t.Errorf("peer Run() = %v, want nil on Cease", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer did not observe closure")
	}
	if sa.State() != StateIdle {
		t.Errorf("state after close: %v", sa.State())
	}
	// Send after close fails.
	if err := sa.Send(&bgp.Update{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: %v", err)
	}
	// Double close is fine.
	if err := sa.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out a real 3s hold timer; skipped in -short mode")
	}
	// B never runs its keepalive loop; A's hold timer must fire.
	a := cfg(65001, "10.0.0.1")
	a.HoldTime = 3 * time.Second // minimum acceptable
	b := cfg(65002, "10.0.0.2")
	b.HoldTime = 3 * time.Second
	sa, sb := pipePair(t, a, b)
	defer sb.Close()
	errs := make(chan error, 1)
	go func() { errs <- sa.Run() }()
	// Drain B's conn so A's writes don't block, without sending keepalives.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := sb.conn.Read(buf); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrHoldTimerExpired) {
			t.Errorf("Run() = %v, want hold timer expiry", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer never fired")
	}
}

func TestKeepalivesSustainSession(t *testing.T) {
	if testing.Short() {
		t.Skip("holds a live session across several hold periods; skipped in -short mode")
	}
	a := cfg(65001, "10.0.0.1")
	a.HoldTime = 3 * time.Second
	b := cfg(65002, "10.0.0.2")
	b.HoldTime = 3 * time.Second
	sa, sb := pipePair(t, a, b)
	defer sa.Close()
	defer sb.Close()
	errsA := make(chan error, 1)
	errsB := make(chan error, 1)
	go func() { errsA <- sa.Run() }()
	go func() { errsB <- sb.Run() }()
	// Both run loops exchange keepalives; the session must outlive several
	// hold periods.
	select {
	case err := <-errsA:
		t.Fatalf("A died: %v", err)
	case err := <-errsB:
		t.Fatalf("B died: %v", err)
	case <-time.After(4 * time.Second):
	}
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Errorf("states: %v / %v", sa.State(), sb.State())
	}
}

func TestTCPListenerDial(t *testing.T) {
	lnCfg := cfg(12654, "198.51.100.1")
	received := make(chan *bgp.Update, 100)
	lnCfg.OnUpdate = func(u *bgp.Update) { received <- u }
	ln, err := Listen("127.0.0.1:0", lnCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	accepted := make(chan *Session, 1)
	go func() {
		s, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- s
		s.Run()
	}()

	var transitions []State
	dialCfg := cfg(65001, "10.0.0.1")
	dialCfg.OnStateChange = func(old, new State) { transitions = append(transitions, new) }
	s, err := Dial(ln.Addr().String(), dialCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go s.Run()

	srv := <-accepted
	defer srv.Close()
	if srv.PeerAS() != 65001 || s.PeerAS() != 12654 {
		t.Errorf("peer ASes: %d / %d", srv.PeerAS(), s.PeerAS())
	}

	// Feed 50 updates through real TCP.
	for i := 0; i < 50; i++ {
		u := &bgp.Update{
			NLRI: []netip.Prefix{netip.MustParsePrefix("84.205.64.0/24")},
			Attrs: bgp.PathAttrs{
				Origin:      bgp.OriginIGP,
				ASPath:      bgp.NewASPath(65001, 12654),
				NextHop:     netip.MustParseAddr("10.0.0.1"),
				Communities: bgp.Communities{bgp.NewCommunity(65001, uint16(i))},
			},
		}
		if err := s.Send(u); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		select {
		case <-received:
		case <-time.After(3 * time.Second):
			t.Fatalf("only %d of 50 updates arrived", i)
		}
	}
	// FSM walked OpenSent → OpenConfirm → Established.
	want := []State{StateOpenSent, StateOpenConfirm, StateEstablished}
	if len(transitions) < 3 {
		t.Fatalf("transitions: %v", transitions)
	}
	for i, st := range want {
		if transitions[i] != st {
			t.Errorf("transition %d = %v, want %v", i, transitions[i], st)
		}
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateIdle: "Idle", StateConnect: "Connect", StateActive: "Active",
		StateOpenSent: "OpenSent", StateOpenConfirm: "OpenConfirm",
		StateEstablished: "Established",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d: %q", int(st), st.String())
		}
	}
	if State(99).String() != "State(99)" {
		t.Error("unknown state string")
	}
}

// TestAcceptContextCancel pins the supervisor-shutdown contract:
// cancelling the context unblocks a pending AcceptContext with
// ctx.Err(), closes the listener (later dials are refused), and the
// accept goroutine does not leak.
func TestAcceptContextCancel(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", cfg(12654, "198.51.100.1"))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ln.AcceptContext(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the accept block
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("AcceptContext returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcceptContext did not unblock on cancel")
	}

	// Shutdown closed the listener: a new peer cannot connect.
	if conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after AcceptContext cancellation")
	}

	// The watcher/accept goroutines are gone (allow the runtime a few
	// scheduling rounds to retire them).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestAcceptHandshakeFailure pins that a connection failing the
// handshake (a port scan, a TCP probe, a garbage OPEN) surfaces as
// ErrHandshake — the per-connection sentinel accept loops match to
// keep accepting — not as a listener-level error or a nil session.
func TestAcceptHandshakeFailure(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", cfg(12654, "198.51.100.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		s, err := ln.AcceptContext(context.Background())
		if s != nil {
			t.Error("garbage handshake produced a session")
		}
		done <- err
	}()
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")) // not a BGP OPEN
	conn.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHandshake) {
			t.Fatalf("AcceptContext returned %v, want ErrHandshake", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcceptContext did not return on garbage handshake")
	}
}

// TestAcceptContextEstablishes pins that a non-cancelled AcceptContext
// behaves exactly like Accept.
func TestAcceptContextEstablishes(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", cfg(12654, "198.51.100.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type res struct {
		s   *Session
		err error
	}
	got := make(chan res, 1)
	go func() {
		s, err := ln.AcceptContext(context.Background())
		got <- res{s, err}
	}()
	peer, err := Dial(ln.Addr().String(), cfg(65010, "10.0.0.9"))
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.s.Close()
	if r.s.PeerAS() != 65010 {
		t.Errorf("accepted session sees peer AS %d, want 65010", r.s.PeerAS())
	}
}
