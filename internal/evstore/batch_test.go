package evstore_test

import (
	"context"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/evstore"
	"repro/internal/stream"
	"repro/internal/workload"
)

// TestBatchPathMatchesRowPath is the batch==row property pin: for
// random queries (residual windows, collector/peer/prefix filters) and
// random tally windows, the vectorized engines — ScanAnalyze and
// ScanParallel — must produce results bit-identical to the row-path
// reference (classify.RunAll over Scan's event stream) for every
// analyzer, batch-capable and row-fallback alike.
func TestBatchPathMatchesRowPath(t *testing.T) {
	cfg := smallDayConfig()
	cfg.Collectors = 3
	_, sources := workload.DaySources(cfg)
	dir := ingest(t, stream.Concat(sources...))

	// A real route off the store for the filtered analyzers.
	var sample classify.Event
	var scanErr error
	for e := range evstore.Scan(dir, evstore.Query{}, &scanErr) {
		if !e.Withdraw && len(e.ASPath) > 0 {
			sample = e
			break
		}
	}
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	if sample.Collector == "" {
		t.Fatal("no announcement found in the generated day")
	}

	// Batch-capable analyzers (Table1, Counts, SessionMix, Cumulative)
	// mixed with row-fallback ones (PeerBehavior, Ingress) in one run,
	// so both observation paths execute against the same batches.
	protos := func() []classify.Analyzer {
		return []classify.Analyzer{
			analysis.NewTable1(),
			analysis.NewCounts(),
			analysis.NewSessionMix(sample.Collector, sample.Prefix),
			analysis.NewCumulative(sample.Session(), sample.Prefix, sample.ASPath.String()),
			analysis.NewPeerBehavior(),
			analysis.NewIngress(),
		}
	}

	rnd := rand.New(rand.NewSource(11))
	hour := func() time.Time { return testDay.Add(time.Duration(rnd.Intn(25)) * time.Hour) }
	for trial := 0; trial < 10; trial++ {
		var q evstore.Query
		var tally evstore.TimeRange
		if trial > 0 { // trial 0: the unfiltered full-store pass
			if rnd.Intn(2) == 0 {
				q.Window = evstore.TimeRange{From: hour(), To: hour()}
			}
			if rnd.Intn(3) == 0 {
				q.Collectors = []string{"rrc00"}
			}
			if rnd.Intn(3) == 0 {
				q.PeerAS = []uint32{sample.PeerAS}
			}
			if rnd.Intn(3) == 0 {
				q.PrefixRange = netip.PrefixFrom(sample.Prefix.Addr(), 8)
			}
			if rnd.Intn(2) == 0 {
				tally = evstore.TimeRange{From: hour(), To: hour()}
			}
		}

		ref := protos()
		var refErr error
		inWindow := func(e classify.Event) bool { return tally.Contains(e.Time) }
		analysis.RunAll(evstore.Scan(dir, q, &refErr), inWindow, ref...)
		if refErr != nil {
			t.Fatal(refErr)
		}
		want := make([]any, len(ref))
		for i, a := range ref {
			want[i] = a.Finish()
		}

		seq := protos()
		if _, err := evstore.ScanAnalyze(context.Background(), dir, q, tally, seq...); err != nil {
			t.Fatal(err)
		}
		for i, a := range seq {
			if got := a.Finish(); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("trial %d (q=%+v tally=%+v): ScanAnalyze %T diverged:\n got %+v\nwant %+v",
					trial, q, tally, a, got, want[i])
			}
		}

		par := protos()
		if _, err := evstore.ScanParallel(context.Background(), dir, q, tally, 3, par...); err != nil {
			t.Fatal(err)
		}
		for i, a := range par {
			if got := a.Finish(); !reflect.DeepEqual(got, want[i]) {
				t.Errorf("trial %d (q=%+v tally=%+v): ScanParallel %T diverged:\n got %+v\nwant %+v",
					trial, q, tally, a, got, want[i])
			}
		}
	}
}
