package topo

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/dampening"
	"repro/internal/router"
)

// InternetConfig parameterizes the synthetic Internet-like AS topology:
// a meshed transit core, regional ISPs multihomed into it, stub origins,
// and a route collector peering with several edge ASes. Geo-tagging
// transit ASes add a location community per ingress session, so path
// exploration through different ingress points reveals different
// communities — the protocol-level mechanism behind §6.
type InternetConfig struct {
	Seed int64
	// Behavior is installed on every simulated router.
	Behavior router.Behavior

	Tier1 int // fully meshed transit core ASes
	Mids  int // regional ISPs, each multihomed to two tier-1s
	Stubs int // edge ASes, each multihomed to two mids

	// CollectorPeers is how many mid ASes also peer with the collector.
	CollectorPeers int

	// GeoTagging makes every tier-1 tag routes on ingress with a
	// per-session location community.
	GeoTagging bool
	// CleanEgressPeers marks every n-th collector peer as cleaning
	// communities toward the collector (0 disables).
	CleanEgressPeers int
	// CleanIngressPeers marks every n-th collector peer as cleaning
	// communities on ingress from its transit sessions (0 disables) — the
	// placement that stops the spurious-update cascade at the source
	// (paper Exp4), as opposed to CleanEgressPeers' collector-side mask.
	CleanIngressPeers int

	// MRAI rate-limits each collector peer's advertisements toward the
	// collector (zero disables, as the beacon experiments require).
	MRAI time.Duration
	// Dampening enables RFC 2439 flap dampening on the collector's
	// ingress from every peer (nil disables).
	Dampening *dampening.Config

	// MaxLinkDelay bounds the random per-link propagation delay; the
	// spread is what makes withdrawal waves explore paths.
	MaxLinkDelay time.Duration
}

// DefaultInternetConfig returns a laptop-scale topology.
func DefaultInternetConfig(b router.Behavior) InternetConfig {
	return InternetConfig{
		Seed:             42,
		Behavior:         b,
		Tier1:            4,
		Mids:             8,
		Stubs:            12,
		CollectorPeers:   5,
		GeoTagging:       true,
		CleanEgressPeers: 3,
		MaxLinkDelay:     80 * time.Millisecond,
	}
}

// Internet is the constructed topology.
type Internet struct {
	Net       *router.Network
	Collector *router.Router
	// Origin is the stub that plays the beacon role.
	Origin *router.Router
	// CollectorPeerNames lists the ASes peering with the collector, in
	// construction order.
	CollectorPeerNames []string
	// PeerAS and PeerAddr resolve a collector peer's identity for MRT
	// archiving.
	PeerAS   map[string]uint32
	PeerAddr map[string]netip.Addr
	// FlapLinks lists sessions that can be taken down without
	// disconnecting the origin (every endpoint keeps an alternate path) —
	// the candidates churn workloads flap to induce path exploration.
	FlapLinks [][2]string
}

// AS number blocks per tier.
const (
	tier1Base uint32 = 100
	midBase   uint32 = 1000
	stubBase  uint32 = 30000
	// CollectorAS is the collector's AS (RIS's AS12654).
	CollectorAS uint32 = 12654
)

// BuildInternet constructs and converges the topology. The origin stub has
// not originated anything yet.
func BuildInternet(start time.Time, cfg InternetConfig) (*Internet, error) {
	if cfg.Tier1 < 2 || cfg.Mids < 2 || cfg.Stubs < 1 {
		return nil, fmt.Errorf("topo: need at least 2 tier-1s, 2 mids, 1 stub")
	}
	if cfg.CollectorPeers > cfg.Mids {
		cfg.CollectorPeers = cfg.Mids
	}
	b := newShapeBuilder(start, cfg.Seed, cfg.MaxLinkDelay)
	rng := b.rng
	n := b.n
	// Full trace for compatibility with the cycle helpers and tests;
	// scenario-scale consumers (simnet, simstudy) replace this with a
	// bounded capture sink before driving workloads.
	n.EnableTrace()
	inet := &Internet{
		Net:      n,
		PeerAS:   make(map[string]uint32),
		PeerAddr: make(map[string]netip.Addr),
	}
	nextAddrPair := b.addrPair
	delay := b.delay
	routerID := shapeRouterID

	// Tier-1 core.
	tier1 := make([]*router.Router, cfg.Tier1)
	for i := range tier1 {
		as := tier1Base + uint32(i)
		tier1[i] = n.AddRouter(fmt.Sprintf("T%d", i), as, routerID(as, 1), cfg.Behavior)
	}
	// geoTag returns the ingress policy a tier-1 applies on one session.
	sessionIdx := make(map[string]int)
	geoTag := func(t *router.Router) router.Policy {
		return ingressTag(cfg.GeoTagging, sessionIdx, t)
	}
	// Full mesh among tier-1s, tagging on ingress both ways.
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			a, b := nextAddrPair()
			n.Connect(tier1[i], tier1[j], router.SessionConfig{
				AAddr: a, BAddr: b,
				AImport: geoTag(tier1[i]),
				BImport: geoTag(tier1[j]),
				Delay:   delay(),
			})
		}
	}

	// Mid tier: each multihomed to two distinct tier-1s, plus a parallel
	// second session to the primary tier-1 at a different ingress location.
	// The parallel sessions are what produce nc announcements at the
	// collector: when the preferred session's route goes away, the mid
	// fails over to an AS-path-identical route whose geo tag differs —
	// the multi-interconnection situation of §6.
	mids := make([]*router.Router, cfg.Mids)
	cleansIngress := func(i int) bool {
		return cfg.CleanIngressPeers > 0 && i < cfg.CollectorPeers &&
			i%cfg.CleanIngressPeers == cfg.CleanIngressPeers-1
	}
	for i := range mids {
		as := midBase + uint32(i)
		mids[i] = n.AddRouter(fmt.Sprintf("M%d", i), as, routerID(as, 1), cfg.Behavior)
		t1 := tier1[i%len(tier1)]
		t2 := tier1[(i+1+rng.Intn(len(tier1)-1))%len(tier1)]
		if t2 == t1 {
			t2 = tier1[(i+1)%len(tier1)]
		}
		for _, t := range []*router.Router{t1, t1, t2} {
			a, b := nextAddrPair()
			// The tier-1 tags what it hears from the mid, and the mid
			// tags what it hears from the tier-1 with the tier-1's
			// per-ingress location (the AS3356-style scheme of §6) — or,
			// for ingress-cleaning collector peers, strips everything on
			// the way in.
			midImport := geoTag(t)
			if cleansIngress(i) {
				midImport = router.Policy{router.StripAllCommunities()}
			}
			n.Connect(mids[i], t, router.SessionConfig{
				AAddr: a, BAddr: b,
				AImport: midImport,
				BImport: geoTag(t),
				Delay:   delay(),
			})
		}
	}

	// Stubs: each multihomed to two distinct mids. The first stub is the
	// beacon origin.
	for i := 0; i < cfg.Stubs; i++ {
		as := stubBase + uint32(i)
		stub := n.AddRouter(fmt.Sprintf("S%d", i), as, routerID(as, 1), cfg.Behavior)
		m1 := mids[i%len(mids)]
		m2 := mids[(i+1+rng.Intn(len(mids)-1))%len(mids)]
		if m2 == m1 {
			m2 = mids[(i+1)%len(mids)]
		}
		for _, m := range []*router.Router{m1, m2} {
			a, b := nextAddrPair()
			n.Connect(stub, m, router.SessionConfig{
				AAddr: a, BAddr: b,
				Delay: delay(),
			})
		}
		if i == 0 {
			inet.Origin = stub
			// The origin is dual-homed; losing m1 just fails it over to m2.
			inet.FlapLinks = append(inet.FlapLinks, [2]string{stub.Name, m1.Name})
		}
	}

	// Collector peering: the first CollectorPeers mids feed the collector.
	collector := n.AddRouter("COLLECTOR", CollectorAS, routerID(CollectorAS, 1), cfg.Behavior)
	inet.Collector = collector
	for i := 0; i < cfg.CollectorPeers; i++ {
		m := mids[i]
		a, b := nextAddrPair()
		scfg := router.SessionConfig{
			AAddr: a, BAddr: b, Delay: delay(),
			AMRAI:      cfg.MRAI,
			BDampening: cfg.Dampening,
		}
		if cfg.CleanEgressPeers > 0 && i%cfg.CleanEgressPeers == cfg.CleanEgressPeers-1 {
			scfg.AExport = router.Policy{router.StripAllCommunities()}
		}
		n.Connect(m, collector, scfg)
		inet.CollectorPeerNames = append(inet.CollectorPeerNames, m.Name)
		inet.PeerAS[m.Name] = m.AS
		inet.PeerAddr[m.Name] = a
		// Each collector-peer mid has a parallel second session to its
		// primary tier-1, so flapping the first is an AS-path-identical
		// failover whose geo tag differs — the nc mechanism of §6.
		inet.FlapLinks = append(inet.FlapLinks, [2]string{m.Name, tier1[i%len(tier1)].Name})
	}

	if _, err := n.Run(); err != nil {
		return nil, fmt.Errorf("topo: initial convergence: %w", err)
	}
	n.ClearTrace()
	return inet, nil
}

// RunBeaconCycle drives one announce/withdraw beacon cycle from the origin
// stub: announce at the current instant, run to convergence, advance to
// the withdraw offset, withdraw, and reconverge. It returns the collector
// trace observed during the cycle.
func (inet *Internet) RunBeaconCycle(prefix netip.Prefix, gap time.Duration) ([]router.TracedMessage, error) {
	n := inet.Net
	n.ClearTrace()
	inet.Origin.Originate(prefix, nil)
	if _, err := n.Run(); err != nil {
		return nil, fmt.Errorf("topo: announce convergence: %w", err)
	}
	n.Engine.RunUntil(n.Engine.Now().Add(gap))
	inet.Origin.WithdrawOriginated(prefix)
	if _, err := n.Run(); err != nil {
		return nil, fmt.Errorf("topo: withdraw convergence: %w", err)
	}
	var out []router.TracedMessage
	for _, m := range n.Trace() {
		if m.To == "COLLECTOR" {
			out = append(out, m)
		}
	}
	return out, nil
}
