# Convert `go test -bench -benchmem` output into the BENCH_<n>.json
# perf-trajectory artifact: {"<benchmark>": {"ns_per_op": N,
# "allocs_per_op": M}, ...}. Lines without a ns/op figure (headers,
# PASS/ok, skipped subtests) are ignored.
#
# Usage: awk -f scripts/bench2json.awk bench-output.txt > BENCH_5.json
BEGIN { printf "{"; n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n  \"%s\": {\"ns_per_op\": %s", name, ns
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
