package workload

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/classify"
	"repro/internal/stream"
)

// DayConfig parameterizes the full-day dataset generator (d_mar20 and the
// quarterly d_hist days).
type DayConfig struct {
	Seed int64
	// Day is the midnight-UTC start of the generated day.
	Day time.Time

	Collectors        int
	PeersPerCollector int
	PrefixesV4        int
	PrefixesV6        int

	// VisibleFrac is the fraction of (session, prefix) streams that exist
	// (not every peer sees every prefix).
	VisibleFrac float64
	// MeanEventsPerStream is the Poisson mean of routing events per stream
	// per day.
	MeanEventsPerStream float64

	// TaggedFrac is the fraction of streams whose transit path crosses a
	// geo-tagging AS (community adoption).
	TaggedFrac float64
	// CleanEgressFrac / CleanIngressFrac control the peer-kind mix.
	CleanEgressFrac  float64
	CleanIngressFrac float64

	// Event-menu weights (normalized internally).
	PFlap          float64 // path move to backup and return
	PComm          float64 // community-only change
	PDup           float64 // duplicate re-announcement
	PPrepend       float64 // prepending toggle
	PWithdrawCycle float64 // explicit withdraw + re-announce
}

// InWindow reports whether an event falls inside the configured measured
// day — the streaming analogue of Dataset.CountingWindow, usable before
// (or without) materializing a Dataset.
func (c DayConfig) InWindow(e classify.Event) bool {
	return inDay(c.Day, e)
}

// MultiDayWindow returns the half-open [Day, Day+days*24h) counting
// window of a MultiDaySource range — the multi-day extension of the
// single-day convention, kept here so the analyses and tools never
// hand-roll the boundary.
func (c DayConfig) MultiDayWindow(days int) (from, to time.Time) {
	return c.Day, c.Day.Add(time.Duration(days) * 24 * time.Hour)
}

// MultiDayInWindow returns the counting-window predicate for a days-long
// range, the multi-day analogue of InWindow.
func (c DayConfig) MultiDayInWindow(days int) func(classify.Event) bool {
	from, to := c.MultiDayWindow(days)
	return func(e classify.Event) bool {
		return !e.Time.Before(from) && e.Time.Before(to)
	}
}

// normalizedMenu returns cumulative menu thresholds.
func (c DayConfig) normalizedMenu() [5]float64 {
	w := [5]float64{c.PFlap, c.PComm, c.PDup, c.PPrepend, c.PWithdrawCycle}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum == 0 {
		w = [5]float64{1, 0, 0, 0, 0}
		sum = 1
	}
	var out [5]float64
	acc := 0.0
	for i, v := range w {
		acc += v / sum
		out[i] = acc
	}
	return out
}

// DefaultDayConfig returns the March-15-2020-like configuration, tuned so
// the classifier reproduces the Table 2 type mix (pc 33.7%, pn 15.1%,
// nc 24.5%, nn 25.7%, xc+xn ≈ 1%). Scale counts up for benchmarks, down
// for quick tests.
func DefaultDayConfig(day time.Time) DayConfig {
	return DayConfig{
		Seed:                20200315,
		Day:                 day,
		Collectors:          10,
		PeersPerCollector:   15,
		PrefixesV4:          600,
		PrefixesV6:          60,
		VisibleFrac:         0.6,
		MeanEventsPerStream: 1.2,
		TaggedFrac:          0.90,
		CleanEgressFrac:     0.18,
		CleanIngressFrac:    0.05,
		PFlap:               0.38,
		PComm:               0.30,
		PDup:                0.24,
		PPrepend:            0.02,
		PWithdrawCycle:      0.06,
	}
}

// HistoricalDayConfig scales the default configuration to a past year,
// modelling the trends §4–§5 report: the number of collector sessions
// roughly doubled over the decade, community adoption rose steeply
// (Streibelt et al. report +250% unique communities 2010–2018), and update
// volume grew with both.
func HistoricalDayConfig(year int) DayConfig {
	if year < 2010 {
		year = 2010
	}
	if year > 2020 {
		year = 2020
	}
	frac := float64(year-2010) / 10.0
	day := time.Date(year, 3, 15, 0, 0, 0, 0, time.UTC)
	cfg := DefaultDayConfig(day)
	cfg.Seed = int64(year)*10000 + 315
	// Sessions roughly double across the decade.
	cfg.PeersPerCollector = int(float64(cfg.PeersPerCollector) * (0.5 + 0.5*frac))
	if cfg.PeersPerCollector < 3 {
		cfg.PeersPerCollector = 3
	}
	// Community adoption grows from ~45% to 90%.
	cfg.TaggedFrac = 0.45 + 0.45*frac
	// Prefix universe and churn grow.
	cfg.PrefixesV4 = int(float64(cfg.PrefixesV4) * (0.55 + 0.45*frac))
	cfg.PrefixesV6 = int(float64(cfg.PrefixesV6) * (0.2 + 0.8*frac))
	cfg.MeanEventsPerStream = 0.9 + 0.5*frac
	return cfg
}

// streamScript holds the mutable path/community state of one stream while
// its day of events is generated.
type streamScript struct {
	cfg       DayConfig
	peer      Peer
	prefix    netip.Prefix
	originAS  uint32
	primary   bgp.ASPath
	backup    bgp.ASPath
	loc       int // ingress location index for geo tags
	tagged    bool
	prepended bool

	curPath  bgp.ASPath
	curComms bgp.Communities
	hasMED   bool
	med      uint32

	out *[]classify.Event
}

// visibleComms applies the peer's cleaning behaviour to the communities a
// route would carry at the collector.
func (s *streamScript) visibleComms(c bgp.Communities) bgp.Communities {
	switch s.peer.Kind {
	case PeerCleansEgress, PeerCleansIngress:
		return nil
	default:
		return c
	}
}

func (s *streamScript) emit(t time.Time, path bgp.ASPath, comms bgp.Communities) {
	s.curPath, s.curComms = path, comms
	*s.out = append(*s.out, classify.Event{
		Time:        t,
		Collector:   s.peer.Collector,
		PeerAS:      s.peer.AS,
		PeerAddr:    s.peer.Addr,
		Prefix:      s.prefix,
		ASPath:      path,
		Communities: comms,
		HasMED:      s.hasMED,
		MED:         s.med,
	})
}

func (s *streamScript) emitWithdraw(t time.Time) {
	*s.out = append(*s.out, classify.Event{
		Time:      t,
		Collector: s.peer.Collector,
		PeerAS:    s.peer.AS,
		PeerAddr:  s.peer.Addr,
		Prefix:    s.prefix,
		Withdraw:  true,
	})
}

// GenerateDay synthesizes one full day of collector updates, materialized
// and globally time-ordered. It is the compatibility wrapper over
// DaySources; streaming consumers should merge or concatenate the
// per-session sources directly instead of holding the whole day.
// Collect-then-sort keeps only one session slice live beyond the output
// (a k-way Merge would hold every session's slice concurrently), and the
// stable sort reproduces Merge's tie-break exactly: per-session order is
// preserved and cross-session ties keep source (session) order.
func GenerateDay(cfg DayConfig) *Dataset {
	peers, sources := DaySources(cfg)
	events := stream.Collect(stream.Concat(sources...))
	sortEvents(events)
	return &Dataset{Day: cfg.Day, Peers: peers, Events: events}
}

// dayPrefixes builds the day's announced prefix universe.
func dayPrefixes(cfg DayConfig) []netip.Prefix {
	prefixes := make([]netip.Prefix, 0, cfg.PrefixesV4+cfg.PrefixesV6)
	for i := 0; i < cfg.PrefixesV4; i++ {
		addr := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0})
		p, _ := addr.Prefix(24)
		prefixes = append(prefixes, p)
	}
	for i := 0; i < cfg.PrefixesV6; i++ {
		addr := netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, byte(i >> 8), byte(i)})
		p, _ := addr.Prefix(48)
		prefixes = append(prefixes, p)
	}
	return prefixes
}

// dayPeerEvents generates one peer session's full day across all prefixes,
// time-sorted. Per-stream RNGs are derived from (prefix, peer) indices, so
// the events are identical whether generation is driven prefix-major (the
// old materialized path) or peer-major (the streaming path).
func dayPeerEvents(cfg DayConfig, peer Peer, peerIdx int, prefixes []netip.Prefix, menu [5]float64) []classify.Event {
	transitAlt := []uint32{701, 7018, 3320, 6762, 9002, 4637, 7473, 12956}
	var events []classify.Event
	for pi, prefix := range prefixes {
		originAS := uint32(1000 + pi%45000)
		rng := streamRNG(cfg.Seed, uint64(pi), uint64(peerIdx), 0xDA7A)
		if rng.Float64() >= cfg.VisibleFrac {
			continue
		}
		s := &streamScript{
			cfg:      cfg,
			peer:     peer,
			prefix:   prefix,
			originAS: originAS,
			loc:      rng.Intn(64),
			tagged:   peer.TaggedUpstream,
			out:      &events,
		}
		up2 := transitAlt[rng.Intn(len(transitAlt))]
		if rng.Float64() < 0.5 {
			// Longer primary path through a middle hop.
			mid := uint32(30000 + rng.Intn(5000))
			s.primary = bgp.NewASPath(peer.AS, peer.UpstreamAS, mid, originAS)
		} else {
			s.primary = bgp.NewASPath(peer.AS, peer.UpstreamAS, originAS)
		}
		s.backup = bgp.NewASPath(peer.AS, up2, peer.UpstreamAS, originAS)
		if rng.Float64() < 0.3 {
			s.hasMED = true
			s.med = uint32(rng.Intn(100))
		}
		s.run(rng, menu)
	}
	sortEvents(events)
	return events
}

// run generates the stream's warm-up announcement plus its day of events.
func (s *streamScript) run(rng *rand.Rand, menu [5]float64) {
	day := s.cfg.Day
	steady := s.steadyComms(rng)
	// Warm-up: establish classifier state one hour before the day begins.
	warm := day.Add(-time.Hour + time.Duration(rng.Int63n(int64(50*time.Minute))))
	s.emit(warm, s.primary, s.visibleComms(steady))

	n := poisson(rng, s.cfg.MeanEventsPerStream)
	if n == 0 {
		return
	}
	// Draw event base times, sorted.
	times := make([]time.Duration, n)
	for i := range times {
		times[i] = time.Duration(rng.Int63n(int64(24 * time.Hour)))
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	for _, off := range times {
		t := day.Add(off)
		roll := rng.Float64()
		switch {
		case roll < menu[0]:
			s.flap(rng, t)
		case roll < menu[1]:
			s.commChange(rng, t)
		case roll < menu[2]:
			s.duplicate(rng, t)
		case roll < menu[3]:
			s.prependToggle(rng, t)
		default:
			s.withdrawCycle(rng, t)
		}
	}
}

// steadyComms returns the stream's steady-state community attribute.
func (s *streamScript) steadyComms(rng *rand.Rand) bgp.Communities {
	if !s.tagged {
		return nil
	}
	return geoCommunitySet(rng, s.peer.UpstreamAS, s.loc)
}

// flap models a path move to the backup route with community/duplicate
// exploration, then a return to the primary.
func (s *streamScript) flap(rng *rand.Rand, t time.Time) {
	backupComms := bgp.Communities(nil)
	if s.tagged {
		backupComms = geoCommunitySet(rng, s.peer.UpstreamAS, rng.Intn(64))
	}
	s.emit(t, s.backup, s.visibleComms(backupComms))
	// Exploration extras while converging on the backup.
	k := poisson(rng, 0.9)
	for i := 0; i < k; i++ {
		t = t.Add(time.Duration(1+rng.Intn(20)) * time.Second)
		switch {
		case s.tagged && s.peer.Kind == PeerTransparent:
			// Rotating geo communities: nc at the collector.
			s.emit(t, s.backup, geoCommunitySet(rng, s.peer.UpstreamAS, rng.Intn(64)))
		case s.tagged && s.peer.Kind == PeerCleansEgress:
			// Upstream churn cleaned on egress: nn duplicates (Exp3).
			s.emit(t, s.backup, nil)
		case !s.tagged && rng.Float64() < 0.1:
			s.emit(t, s.curPath, s.curComms) // occasional plain duplicate
		}
	}
	// Return to the primary path.
	t = t.Add(time.Duration(10+rng.Intn(60)) * time.Second)
	s.emit(t, s.primaryPath(), s.visibleComms(s.steadyComms(rng)))
}

// commChange models a community-only change on the current path.
func (s *streamScript) commChange(rng *rand.Rand, t time.Time) {
	switch {
	case s.tagged && s.peer.Kind == PeerTransparent:
		s.emit(t, s.curPath, geoCommunitySet(rng, s.peer.UpstreamAS, rng.Intn(64)))
	case s.tagged && s.peer.Kind == PeerCleansEgress:
		s.emit(t, s.curPath, nil) // internal change surfaces as nn
	default:
		if rng.Float64() < 0.4 {
			if s.hasMED {
				s.med = uint32(rng.Intn(100)) // MED-only churn: nn w/ MED note
			}
			s.emit(t, s.curPath, s.curComms)
		}
	}
}

// duplicate re-announces the current state unchanged.
func (s *streamScript) duplicate(rng *rand.Rand, t time.Time) {
	if s.hasMED && rng.Float64() < 0.5 {
		s.med = uint32(rng.Intn(100))
	}
	s.emit(t, s.curPath, s.curComms)
}

// prependToggle switches origin prepending on or off (xn, sometimes xc).
func (s *streamScript) prependToggle(rng *rand.Rand, t time.Time) {
	s.prepended = !s.prepended
	comms := s.curComms
	if s.tagged && s.peer.Kind == PeerTransparent && rng.Float64() < 0.25 {
		comms = geoCommunitySet(rng, s.peer.UpstreamAS, rng.Intn(64))
	}
	s.emit(t, s.primaryPath(), comms)
}

// primaryPath returns the primary path with the current prepending state.
func (s *streamScript) primaryPath() bgp.ASPath {
	if !s.prepended {
		return s.primary
	}
	return s.primary.Prepend(s.peer.AS, 2)
}

// withdrawCycle withdraws the prefix and re-announces it shortly after.
func (s *streamScript) withdrawCycle(rng *rand.Rand, t time.Time) {
	s.emitWithdraw(t)
	t = t.Add(time.Duration(30+rng.Intn(90)) * time.Second)
	s.emit(t, s.primaryPath(), s.visibleComms(s.curCommsOrSteady(rng)))
}

func (s *streamScript) curCommsOrSteady(rng *rand.Rand) bgp.Communities {
	if s.tagged {
		return geoCommunitySet(rng, s.peer.UpstreamAS, s.loc)
	}
	return nil
}

// QuarterlyDays returns the paper's §4 sampling instants for one year:
// one full day every three months (March 15, June 15, September 15,
// December 15).
func QuarterlyDays(year int) []time.Time {
	var out []time.Time
	for _, m := range []time.Month{time.March, time.June, time.September, time.December} {
		out = append(out, time.Date(year, m, 15, 0, 0, 0, 0, time.UTC))
	}
	return out
}

// HistoricalQuarterConfig is HistoricalDayConfig pinned to one of the
// year's quarterly sampling days (quarter in 0..3), with a quarter-unique
// seed so the four days of a year differ.
func HistoricalQuarterConfig(year, quarter int) DayConfig {
	if quarter < 0 {
		quarter = 0
	}
	if quarter > 3 {
		quarter = 3
	}
	cfg := HistoricalDayConfig(year)
	cfg.Day = QuarterlyDays(cfg.Day.Year())[quarter]
	cfg.Seed = cfg.Seed*10 + int64(quarter)
	return cfg
}
