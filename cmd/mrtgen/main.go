// Command mrtgen generates synthetic MRT update archives: either a full
// measurement day (d_mar20-like) or the beacon subset (d_beacon-like),
// optionally scaled to a historical year.
//
// Usage:
//
//	mrtgen -out DIR [-kind day|beacon] [-year 2020] [-scale 1.0] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collector"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "", "output directory for the per-collector .mrt files (required)")
	kind := flag.String("kind", "day", "dataset kind: day or beacon")
	year := flag.Int("year", 2020, "measurement year (2010-2020)")
	scale := flag.Float64("scale", 1.0, "multiplier on prefixes and peers")
	seed := flag.Int64("seed", 0, "override the generator seed (0 keeps the default)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "mrtgen: -out is required")
		os.Exit(2)
	}

	var ds *workload.Dataset
	switch *kind {
	case "day":
		cfg := workload.HistoricalDayConfig(*year)
		cfg.PrefixesV4 = int(float64(cfg.PrefixesV4) * *scale)
		cfg.PrefixesV6 = int(float64(cfg.PrefixesV6) * *scale)
		cfg.PeersPerCollector = max(1, int(float64(cfg.PeersPerCollector)**scale))
		if *seed != 0 {
			cfg.Seed = *seed
		}
		ds = workload.GenerateDay(cfg)
	case "beacon":
		cfg := workload.HistoricalBeaconConfig(*year)
		cfg.PeersPerCollector = max(1, int(float64(cfg.PeersPerCollector)**scale))
		if *seed != 0 {
			cfg.Seed = *seed
		}
		ds = workload.GenerateBeacon(cfg)
	default:
		fmt.Fprintf(os.Stderr, "mrtgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	files, err := collector.WriteDatasetDir(ds, *out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrtgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d events across %d collector archives in %s\n",
		len(ds.Events), len(files), *out)
	for name, path := range files {
		n, err := collector.CountRecords(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrtgen: verify %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("  %-16s %8d records  %s\n", name, n, path)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
