// Package stream makes the update stream the pipeline's first-class
// object: producers (workload generators, MRT archive readers) lazily
// yield normalized classify.Events one at a time, combinators merge,
// filter, window, and concatenate them, and analyses consume them in a
// single pass without materializing whole datasets in memory.
//
// An EventSource is an iter.Seq, so consumers range over it directly and
// early exit propagates back to the producer. Sources from the workload
// generators are replayable — ranging a second time regenerates the same
// events — while archive-backed sources (pipeline.FileSource) are
// single-use per normalizer; each source documents which it is.
package stream

import (
	"iter"
	"time"

	"repro/internal/classify"
)

// EventSource is a lazy, single-pass stream of normalized events.
type EventSource = iter.Seq[classify.Event]

// Empty is the stream with no events.
func Empty() EventSource {
	return func(func(classify.Event) bool) {}
}

// FromSlice adapts a materialized event slice into a source.
func FromSlice(events []classify.Event) EventSource {
	return func(yield func(classify.Event) bool) {
		for _, e := range events {
			if !yield(e) {
				return
			}
		}
	}
}

// Collect materializes a source into a slice.
func Collect(src EventSource) []classify.Event {
	var out []classify.Event
	for e := range src {
		out = append(out, e)
	}
	return out
}

// Count drains the source and returns the number of events.
func Count(src EventSource) int {
	n := 0
	for range src {
		n++
	}
	return n
}

// Filter yields only the events for which keep returns true.
func Filter(src EventSource, keep func(classify.Event) bool) EventSource {
	return func(yield func(classify.Event) bool) {
		for e := range src {
			if keep(e) && !yield(e) {
				return
			}
		}
	}
}

// Window restricts a source to events with from <= Time < to, the
// counting-window convention of workload.Dataset.
func Window(src EventSource, from, to time.Time) EventSource {
	return Filter(src, func(e classify.Event) bool {
		return !e.Time.Before(from) && e.Time.Before(to)
	})
}

// Take yields at most n events from src; early exit propagates back to
// the producer, so a Take over an expensive source (an archive read, a
// store scan) stops generating as soon as the quota is reached.
func Take(src EventSource, n int) EventSource {
	return func(yield func(classify.Event) bool) {
		if n <= 0 {
			return
		}
		left := n
		for e := range src {
			if !yield(e) {
				return
			}
			left--
			if left == 0 {
				return
			}
		}
	}
}

// Tee invokes fn on every event flowing through and yields the stream
// unchanged — progress counters and probes without a second pass. fn
// runs before the event is yielded downstream.
func Tee(src EventSource, fn func(classify.Event)) EventSource {
	return func(yield func(classify.Event) bool) {
		for e := range src {
			fn(e)
			if !yield(e) {
				return
			}
		}
	}
}

// Concat yields each source in turn, exhausting one before starting the
// next. The result is ordered per input source but not globally
// time-ordered; it suits session-local analyses (classification state is
// keyed per (session, prefix), so any order that preserves each stream's
// internal order yields identical results) while keeping only one
// source's working set live at a time. Use Merge for global time order.
func Concat(sources ...EventSource) EventSource {
	return func(yield func(classify.Event) bool) {
		for _, src := range sources {
			for e := range src {
				if !yield(e) {
					return
				}
			}
		}
	}
}

// Classify runs a classifier over the stream in one pass and tallies the
// events for which inWindow returns true (nil counts everything). Events
// outside the window still feed classifier state, matching the warm-up
// convention of the day datasets.
func Classify(src EventSource, inWindow func(classify.Event) bool) classify.Counts {
	cl := classify.New()
	var counts classify.Counts
	for e := range src {
		res, ok := cl.Observe(e)
		if inWindow != nil && !inWindow(e) {
			continue
		}
		if !ok {
			counts.Withdrawals++
			continue
		}
		counts.Add(res)
	}
	return counts
}
